(* The benchmark harness.

   Part 1 regenerates every figure/table of the paper (experiments
   F1-F9, G1, E1/E2, T1-T3 — see DESIGN.md §5 and EXPERIMENTS.md) and
   the counted performance experiments (P4-P7, A1).

   Part 2 times the core operations with Bechamel: one Test.make per
   measured code path, grouped by subsystem. *)

open Bechamel
(* Toolkit.Instance is shadowed by Orion_core.Instance; qualify it. *)
open Orion_core
module A = Orion_schema.Attribute
module D = Orion_schema.Domain
module Schema = Orion_schema.Schema
module VM = Orion_versions.Version_manager
module Evolution = Orion_evolution.Evolution
module Auth = Orion_authz.Auth
module Authz = Orion_authz.Authz_manager
module Lock_table = Orion_locking.Lock_table
module Protocol = Orion_locking.Protocol
module Part_gen = Orion_workload.Part_gen
module Figures = Orion_experiments.Figures
module Perf = Orion_experiments.Perf
module Report = Orion_experiments.Report
module Wal = Orion_wal.Wal
module Recovery = Orion_wal.Recovery
module Tx = Orion_tx.Tx_manager

(* Part 1: figure reproduction --------------------------------------------- *)

let run_reports () =
  let reports = Figures.all () @ Perf.all () in
  List.iter (fun r -> print_string (Report.to_string r)) reports;
  let failed = List.filter (fun r -> not (Report.ok r)) reports in
  Printf.printf "\n%d/%d experiments passed\n%!"
    (List.length reports - List.length failed)
    (List.length reports);
  failed = []

(* Part 2: timed micro-benchmarks ------------------------------------------- *)

(* Fixtures are built once, outside the staged functions. *)

let forest_of ?(edge_cache = true) depth =
  let db = Database.create ~edge_cache () in
  Part_gen.generate ~db ~roots:4 { Part_gen.default with depth; seed = 21 }

let bench_components_of =
  let forests = List.map (fun d -> (d, forest_of d)) [ 2; 3; 4 ] in
  Test.make_indexed ~name:"traversal/components-of" ~args:[ 2; 3; 4 ] (fun d ->
      let forest = List.assoc d forests in
      let root = List.hd forest.Part_gen.roots in
      Staged.stage (fun () ->
          ignore (Traversal.components_of forest.Part_gen.db root : Oid.t list)))

(* The same traversal against a database created with [~edge_cache:false]:
   the uncached baseline every BENCH_*.json speedup is computed from. *)
let bench_components_of_uncached =
  let forests = List.map (fun d -> (d, forest_of ~edge_cache:false d)) [ 2; 3; 4 ] in
  Test.make_indexed ~name:"traversal/components-of-uncached" ~args:[ 2; 3; 4 ]
    (fun d ->
      let forest = List.assoc d forests in
      let root = List.hd forest.Part_gen.roots in
      Staged.stage (fun () ->
          ignore (Traversal.components_of forest.Part_gen.db root : Oid.t list)))

let shared_forest repr =
  let db = Database.create ~rref_repr:repr () in
  Part_gen.generate ~db ~roots:4
    { Part_gen.default with exclusive = false; share_prob = 0.4; seed = 5 }

let deep_component forest =
  let db = forest.Part_gen.db in
  let root = List.hd forest.Part_gen.roots in
  match List.rev (Traversal.components_of db root) with
  | last :: _ -> last
  | [] -> root

let bench_parents_inline =
  let forest = shared_forest Database.Inline in
  let target = deep_component forest in
  Test.make ~name:"traversal/parents-of (inline rrefs)"
    (Staged.stage (fun () ->
         ignore (Traversal.parents_of forest.Part_gen.db target : Oid.t list)))

let bench_parents_external =
  let forest = shared_forest Database.External in
  let target = deep_component forest in
  Test.make ~name:"traversal/parents-of (external rrefs)"
    (Staged.stage (fun () ->
         ignore (Traversal.parents_of forest.Part_gen.db target : Oid.t list)))

let bench_ancestors =
  let forest = forest_of 4 in
  let target = deep_component forest in
  Test.make ~name:"traversal/ancestors-of"
    (Staged.stage (fun () ->
         ignore (Traversal.ancestors_of forest.Part_gen.db target : Oid.t list)))

(* Steady-state mutation: attach and detach one component. *)
let bench_make_remove =
  let db = Database.create () in
  let define name attrs =
    ignore
      (Schema.define (Database.schema db) ~name ~attributes:attrs ()
        : Orion_schema.Class_def.t)
  in
  define "Leafy" [];
  define "Holder"
    [
      A.make ~name:"Kids" ~domain:(D.Class "Leafy") ~collection:A.Set
        ~refkind:(A.composite ~exclusive:true ~dependent:false ())
        ();
    ];
  let parent = Object_manager.create db ~cls:"Holder" () in
  let child = Object_manager.create db ~cls:"Leafy" () in
  Test.make ~name:"mutation/make+remove component"
    (Staged.stage (fun () ->
         Object_manager.make_component db ~parent ~attr:"Kids" ~child;
         Object_manager.remove_component db ~parent ~attr:"Kids" ~child))

(* Build-and-delete a dependent subtree (cost includes both construction
   and the Deletion Rule cascade). *)
let bench_delete_cascade =
  let db = Database.create () in
  ignore
    (Part_gen.generate ~db ~roots:1 { Part_gen.default with depth = 1; seed = 1 }
      : Part_gen.forest);
  Test.make ~name:"deletion/build+cascade (depth 2)"
    (Staged.stage (fun () ->
         let forest =
           Part_gen.generate ~db ~roots:1 { Part_gen.default with depth = 2; seed = 2 }
         in
         Object_manager.delete db (List.hd forest.Part_gen.roots)))

let bench_codec =
  let forest = shared_forest Database.Inline in
  let db = forest.Part_gen.db in
  let target = deep_component forest in
  let inst = Database.get db target in
  let image = Codec.encode db inst in
  [
    Test.make ~name:"codec/encode"
      (Staged.stage (fun () -> ignore (Codec.encode db inst : bytes)));
    Test.make ~name:"codec/decode"
      (Staged.stage (fun () -> ignore (Codec.decode image : Instance.t)));
  ]

(* Version derivation of a composite object, steady state (the derived
   version is deleted again). *)
let bench_derive =
  let db = Database.create () in
  let define ?versionable name attrs =
    ignore
      (Schema.define (Database.schema db) ?versionable ~name ~attributes:attrs ()
        : Orion_schema.Class_def.t)
  in
  define ~versionable:true "Dv" [];
  define ~versionable:true "Cv"
    [
      A.make ~name:"Parts" ~domain:(D.Class "Dv") ~collection:A.Set
        ~refkind:(A.composite ~exclusive:false ~dependent:false ())
        ();
    ];
  let parts = List.init 8 (fun _ -> Object_manager.create db ~cls:"Dv" ()) in
  let c =
    Object_manager.create db ~cls:"Cv"
      ~attrs:[ ("Parts", Value.VSet (List.map (fun p -> Value.Ref p) parts)) ]
      ()
  in
  Test.make ~name:"versions/derive+delete (8 components)"
    (Staged.stage (fun () ->
         let v = VM.derive db c in
         Object_manager.delete db v))

(* Immediate state-independent change over 200 instances (flip the D
   flag back and forth: steady state). *)
let bench_evolution_immediate =
  let db = Database.create () in
  let define name attrs =
    ignore
      (Schema.define (Database.schema db) ~name ~attributes:attrs ()
        : Orion_schema.Class_def.t)
  in
  define "Ce" [];
  define "Cpe"
    [
      A.make ~name:"A" ~domain:(D.Class "Ce") ~collection:A.Set
        ~refkind:(A.composite ~exclusive:true ~dependent:true ())
        ();
    ];
  let ev = Evolution.attach db in
  for _ = 1 to 200 do
    let h = Object_manager.create db ~cls:"Cpe" () in
    ignore (Object_manager.create db ~cls:"Ce" ~parents:[ (h, "A") ] () : Oid.t)
  done;
  let flag = ref true in
  Test.make ~name:"evolution/immediate I3-I4 flip (200 instances)"
    (Staged.stage (fun () ->
         flag := not !flag;
         match
           Evolution.change_attribute_type ev ~mode:Evolution.Immediate ~cls:"Cpe"
             ~attr:"A"
             ~to_:(A.composite ~exclusive:true ~dependent:!flag ())
             ()
         with
         | Ok _ -> ()
         | Error _ -> failwith "unexpected rejection"))

let bench_locking =
  let forest = forest_of 3 in
  let db = forest.Part_gen.db in
  let root = List.hd forest.Part_gen.roots in
  let composite_set = Protocol.composite_object_locks db ~root Protocol.Update in
  let members = root :: Traversal.components_of db root in
  let instance_sets =
    List.map (fun oid -> Protocol.instance_locks db oid Protocol.Update) members
  in
  let table = Lock_table.create () in
  let tx = ref 0 in
  [
    Test.make ~name:"locking/composite lock set (acquire+release)"
      (Staged.stage (fun () ->
           incr tx;
           (match Protocol.acquire_all table ~tx:!tx composite_set with
           | `Granted | `Blocked _ -> ());
           ignore (Lock_table.release_all table ~tx:!tx : int list)));
    Test.make
      ~name:
        (Printf.sprintf "locking/instance-at-a-time (%d objects)"
           (List.length members))
      (Staged.stage (fun () ->
           incr tx;
           List.iter
             (fun set ->
               match Protocol.acquire_all table ~tx:!tx set with
               | `Granted | `Blocked _ -> ())
             instance_sets;
           ignore (Lock_table.release_all table ~tx:!tx : int list)));
  ]

let bench_authz =
  let db = Database.create () in
  let define ?superclasses name attrs =
    ignore
      (Schema.define (Database.schema db) ?superclasses ~name ~attributes:attrs ()
        : Orion_schema.Class_def.t)
  in
  define "Nd" [];
  define ~superclasses:[ "Nd" ] "Hd"
    [
      A.make ~name:"Parts" ~domain:(D.Class "Nd") ~collection:A.Set
        ~refkind:(A.composite ~exclusive:false ~dependent:false ())
        ();
    ];
  let root = Object_manager.create db ~cls:"Hd" () in
  let mid = Object_manager.create db ~cls:"Hd" ~parents:[ (root, "Parts") ] () in
  let leaf = Object_manager.create db ~cls:"Nd" ~parents:[ (mid, "Parts") ] () in
  let authz = Authz.create db in
  (match
     Authz.grant authz ~subject:"kim" ~auth:(Auth.make Auth.Read)
       ~target:(Authz.On_object root)
   with
  | Ok () -> ()
  | Error _ -> failwith "grant failed");
  [
    Test.make ~name:"authz/combine (8x8 matrix)"
      (Staged.stage (fun () ->
           List.iter
             (fun a ->
               List.iter
                 (fun b -> ignore (Auth.combine [ a; b ] : Auth.combined))
                 Auth.all)
             Auth.all));
    Test.make ~name:"authz/check on level-2 component"
      (Staged.stage (fun () ->
           ignore (Authz.check authz ~subject:"kim" ~op:Auth.Read leaf : bool)));
  ]

let bench_select_sweep =
  let sizes = [ 500; 2000; 8000 ] in
  let engines =
    List.map
      (fun size ->
        let db = Database.create () in
        ignore
          (Schema.define (Database.schema db) ~name:"Sw"
             ~attributes:[ A.make ~name:"K" ~domain:(D.Primitive D.P_integer) () ]
             ()
            : Orion_schema.Class_def.t);
        for i = 1 to size do
          ignore
            (Object_manager.create db ~cls:"Sw" ~attrs:[ ("K", Value.Int (i mod 100)) ] ()
              : Oid.t)
        done;
        (size, Orion_query.Engine.create db))
      sizes
  in
  let expr = Orion_query.Expr.Cmp (Orion_query.Expr.Eq, [ "K" ], Value.Int 42) in
  Test.make_indexed ~name:"query/select scan sweep" ~args:sizes (fun size ->
      let engine = List.assoc size engines in
      Staged.stage (fun () ->
          ignore (Orion_query.Engine.select engine ~cls:"Sw" expr : Oid.t list)))

let bench_delete_sweep =
  let db = Database.create () in
  ignore
    (Part_gen.generate ~db ~roots:1 { Part_gen.default with depth = 1; seed = 1 }
      : Part_gen.forest);
  Test.make_indexed ~name:"deletion/build+cascade sweep (depth)" ~args:[ 1; 2; 3 ]
    (fun depth ->
      Staged.stage (fun () ->
          let forest =
            Part_gen.generate ~db ~roots:1
              { Part_gen.default with depth; seed = depth + 40 }
          in
          Object_manager.delete db (List.hd forest.Part_gen.roots)))

let bench_query =
  let db = Database.create () in
  let define name attrs =
    ignore
      (Schema.define (Database.schema db) ~name ~attributes:attrs ()
        : Orion_schema.Class_def.t)
  in
  define "Item"
    [
      A.make ~name:"Cat" ~domain:(D.Primitive D.P_string) ();
      A.make ~name:"Rank" ~domain:(D.Primitive D.P_integer) ();
    ];
  for i = 1 to 2000 do
    ignore
      (Object_manager.create db ~cls:"Item"
         ~attrs:
           [
             ("Cat", Value.Str (Printf.sprintf "cat-%d" (i mod 50)));
             ("Rank", Value.Int (i mod 97));
           ]
         ()
        : Oid.t)
  done;
  let scan_engine = Orion_query.Engine.create db in
  let idx_engine = Orion_query.Engine.create db in
  ignore (Orion_query.Engine.add_index idx_engine ~cls:"Item" ~attr:"Cat"
           : Orion_query.Index.t);
  let expr = Orion_query.Expr.Cmp (Orion_query.Expr.Eq, [ "Cat" ], Value.Str "cat-7") in
  [
    Test.make ~name:"query/select scan (2000 objects)"
      (Staged.stage (fun () ->
           ignore (Orion_query.Engine.select scan_engine ~cls:"Item" expr : Oid.t list)));
    Test.make ~name:"query/select indexed (2000 objects)"
      (Staged.stage (fun () ->
           ignore (Orion_query.Engine.select idx_engine ~cls:"Item" expr : Oid.t list)));
  ]

let bench_notify =
  let db = Database.create () in
  let define name attrs =
    ignore
      (Schema.define (Database.schema db) ~name ~attributes:attrs ()
        : Orion_schema.Class_def.t)
  in
  define "NLeaf" [ A.make ~name:"T" ~domain:(D.Primitive D.P_string) () ];
  define "NDoc"
    [
      A.make ~name:"Ls" ~domain:(D.Class "NLeaf") ~collection:A.Set
        ~refkind:(A.composite ~exclusive:false ~dependent:false ())
        ();
    ];
  let doc = Object_manager.create db ~cls:"NDoc" () in
  let leaf = Object_manager.create db ~cls:"NLeaf" ~parents:[ (doc, "Ls") ] () in
  let plain_db = Database.create () in
  ignore
    (Schema.define (Database.schema plain_db) ~name:"NLeaf"
       ~attributes:[ A.make ~name:"T" ~domain:(D.Primitive D.P_string) () ]
       ()
      : Orion_schema.Class_def.t);
  let plain_leaf = Object_manager.create plain_db ~cls:"NLeaf" () in
  let n = Orion_notify.Notifier.create db in
  let w = Orion_notify.Notifier.watch n doc in
  let counter = ref 0 in
  [
    Test.make ~name:"notify/write without watcher"
      (Staged.stage (fun () ->
           incr counter;
           Object_manager.write_attr plain_db plain_leaf "T"
             (Value.Str (string_of_int !counter))));
    Test.make ~name:"notify/write with watcher"
      (Staged.stage (fun () ->
           incr counter;
           Object_manager.write_attr db leaf "T" (Value.Str (string_of_int !counter));
           Orion_notify.Notifier.clear n w));
  ]

let bench_storage =
  let store = Orion_storage.Store.create () in
  let seg = Orion_storage.Store.new_segment store in
  let record = Bytes.make 120 'r' in
  Test.make ~name:"storage/insert+delete record"
    (Staged.stage (fun () ->
         let rid = Orion_storage.Store.insert store ~segment:seg record in
         Orion_storage.Store.delete store rid))

(* A transactional fixture for the WAL overhead pair: the same
   steady-state transaction (create a standalone leaf, delete it,
   commit) against a logged and an unlogged manager.  The create+delete
   shape keeps the database size constant across iterations, so neither
   fixture drifts as Bechamel samples. *)
let tx_world ~logged () =
  let db = Database.create () in
  ignore
    (Schema.define (Database.schema db) ~name:"WLeaf"
       ~attributes:[ A.make ~name:"Tag" ~domain:(D.Primitive D.P_integer) () ]
       ()
      : Orion_schema.Class_def.t);
  let wal =
    if logged then begin
      let wal = Wal.create () in
      Wal.attach wal db;
      Persist.save db;
      Some wal
    end
    else None
  in
  let manager = Tx.create ?wal db in
  (db, manager)

let tx_round manager =
  let tx = Tx.begin_tx manager in
  let leaf =
    Tx.create_object manager tx ~cls:"WLeaf"
      ~attrs:[ ("Tag", Value.Int 7) ] ()
  in
  Tx.delete_object manager tx leaf;
  ignore (Tx.commit manager tx : int list)

let bench_wal_commit =
  let _, logged = tx_world ~logged:true () in
  let _, unlogged = tx_world ~logged:false () in
  [
    Test.make ~name:"wal/tx create+delete commit (logged)"
      (Staged.stage (fun () -> tx_round logged));
    Test.make ~name:"wal/tx create+delete commit (unlogged)"
      (Staged.stage (fun () -> tx_round unlogged));
  ]

let all_tests =
  [ bench_components_of; bench_components_of_uncached; bench_parents_inline;
    bench_parents_external; bench_ancestors; bench_make_remove;
    bench_delete_cascade ]
  @ bench_codec
  @ [ bench_derive; bench_evolution_immediate ]
  @ bench_locking @ bench_authz @ bench_query @ bench_notify
  @ [ bench_select_sweep; bench_delete_sweep; bench_storage ]
  @ bench_wal_commit

let run_benchmarks () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.3) ~kde:None () in
  let grouped = Test.make_grouped ~name:"orion" all_tests in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> est
          | Some _ | None -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let table = Orion_util.Table.create ~headers:[ "benchmark"; "time/run" ] in
  List.iter
    (fun (name, ns) ->
      let pretty =
        if Float.is_nan ns then "n/a"
        else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      Orion_util.Table.add_row table [ name; pretty ])
    rows;
  print_string (Orion_util.Table.render table);
  rows

(* Machine-readable perf trajectory ---------------------------------------- *)

(* [BENCH_<pr>.json]: op name -> ns/op, plus the cache comparison every
   perf PR is judged against (see DESIGN.md "Performance architecture"). *)

(* Edge-cache hit rate of a warm depth-4 traversal, measured directly
   rather than through Bechamel. *)
let measure_cache_stats () =
  let forest = forest_of 4 in
  let db = forest.Part_gen.db in
  let root = List.hd forest.Part_gen.roots in
  Database.reset_stats db;
  for _ = 1 to 10 do
    ignore (Traversal.components_of db root : Oid.t list)
  done;
  Database.stats db

(* Steady-state ns/op of [f], by wall-ish CPU clock: long enough a
   sample that the cached-vs-uncached ratio is stable run to run, where
   a single 0.3 s Bechamel quota is visibly noisy. *)
let time_op f =
  for _ = 1 to 3 do f () done;
  let t0 = Sys.time () in
  let iters = ref 0 in
  while Sys.time () -. t0 < 0.5 do
    for _ = 1 to 10 do f () done;
    iters := !iters + 10
  done;
  (Sys.time () -. t0) *. 1e9 /. float_of_int !iters

(* Cached vs uncached composite traversal at each depth, both paths
   timed in this same run (the cache-disable flag on [Database.create]
   is the only difference between the two fixtures). *)
let measure_speedups () =
  List.map
    (fun depth ->
      let run forest =
        let db = forest.Part_gen.db in
        let root = List.hd forest.Part_gen.roots in
        time_op (fun () -> ignore (Traversal.components_of db root : Oid.t list))
      in
      let cached = run (forest_of depth) in
      let uncached = run (forest_of ~edge_cache:false depth) in
      (depth, cached, uncached))
    [ 2; 3; 4 ]

(* Log-append overhead: the same steady-state transaction timed against
   a logged and an unlogged manager in this same run.  The ratio is the
   durability tax per commit (after-image encode + frame append + sync
   accounting). *)
let measure_wal_overhead () =
  (* Fixed iteration count (not wall time) so both fixtures do identical
     work, and a fresh scope + compaction per fixture so the logged
     run's live log buffer can't tax the other's GC. *)
  let measure ~logged =
    let _, manager = tx_world ~logged () in
    for _ = 1 to 100 do tx_round manager done;
    Gc.compact ();
    let rounds = 30_000 in
    let t0 = Sys.time () in
    for _ = 1 to rounds do tx_round manager done;
    (Sys.time () -. t0) *. 1e9 /. float_of_int rounds
  in
  let unlogged_ns = measure ~logged:false in
  let logged_ns = measure ~logged:true in
  (logged_ns, unlogged_ns)

(* Recovery replay throughput: build a log holding a sealed base plus a
   few hundred committed transactions, then time [Recovery.replay] over
   the surviving bytes — the cost a crashed session pays to come back. *)
let measure_recovery () =
  let db = Database.create () in
  let define name attrs =
    ignore
      (Schema.define (Database.schema db) ~name ~attributes:attrs ()
        : Orion_schema.Class_def.t)
  in
  define "RLeaf" [ A.make ~name:"Tag" ~domain:(D.Primitive D.P_integer) () ];
  define "RNode"
    [
      A.make ~name:"Kids" ~domain:(D.Class "RLeaf") ~collection:A.Set
        ~refkind:(A.composite ~exclusive:true ~dependent:true ())
        ();
    ];
  let wal = Wal.create () in
  Wal.attach wal db;
  Persist.save db;
  let manager = Tx.create ~wal db in
  for tag = 1 to 200 do
    let tx = Tx.begin_tx manager in
    let node = Tx.create_object manager tx ~cls:"RNode" () in
    for i = 1 to 2 do
      ignore
        (Tx.create_object manager tx ~cls:"RLeaf" ~parents:[ (node, "Kids") ]
           ~attrs:[ ("Tag", Value.Int (tag + i)) ] ()
          : Oid.t)
    done;
    ignore (Tx.commit manager tx : int list)
  done;
  let survivor = Wal.of_bytes (Wal.contents wal) in
  let _, stats = Recovery.replay survivor in
  let replay_ns =
    time_op (fun () -> ignore (Recovery.replay survivor : Database.t * Recovery.stats))
  in
  (stats, replay_ns)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_bench_json ~path rows =
  let stats : Database.stats = measure_cache_stats () in
  let hit_rate =
    let total = stats.hits + stats.misses in
    if total = 0 then 0.0 else float_of_int stats.hits /. float_of_int total
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"orion-bench-v1\",\n";
  Bench_meta.add buf;
  Bench_meta.add_metrics buf (Orion_obs.Metrics.snapshot ());
  Buffer.add_string buf "  \"unit\": \"ns/op\",\n";
  Buffer.add_string buf "  \"results\": {\n";
  let n = List.length rows in
  List.iteri
    (fun i (name, ns) ->
      Buffer.add_string buf
        (Printf.sprintf "    \"%s\": %s%s\n" (json_escape name)
           (if Float.is_nan ns then "null" else Printf.sprintf "%.1f" ns)
           (if i = n - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  },\n";
  (* Cached vs uncached composite traversal, same run, per depth. *)
  let speedups = measure_speedups () in
  Buffer.add_string buf "  \"edge_cache_speedup\": {\n";
  List.iteri
    (fun i (d, cached, uncached) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    \"depth-%d\": { \"cached_ns\": %.1f, \"uncached_ns\": %.1f, \
            \"speedup\": %.2f }%s\n"
           d cached uncached (uncached /. cached)
           (if i = List.length speedups - 1 then "" else ",")))
    speedups;
  Buffer.add_string buf "  },\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"edge_cache_warm_traversal\": { \"hits\": %d, \"misses\": %d, \
        \"invalidations\": %d, \"hit_rate\": %.4f },\n"
       stats.hits stats.misses stats.invalidations hit_rate);
  (* Durability numbers (PR 2): per-commit log-append overhead and
     recovery replay throughput. *)
  let logged_ns, unlogged_ns = measure_wal_overhead () in
  Buffer.add_string buf
    (Printf.sprintf
       "  \"wal_append_overhead\": { \"logged_commit_ns\": %.1f, \
        \"unlogged_commit_ns\": %.1f, \"overhead\": %.2f },\n"
       logged_ns unlogged_ns (logged_ns /. unlogged_ns));
  let rstats, replay_ns = measure_recovery () in
  let records_per_sec = float_of_int rstats.Recovery.scanned *. 1e9 /. replay_ns in
  Buffer.add_string buf
    (Printf.sprintf
       "  \"recovery_replay\": { \"records\": %d, \"committed_txs\": %d, \
        \"objects_applied\": %d, \"replay_ms\": %.2f, \"records_per_sec\": %.0f }\n"
       rstats.Recovery.scanned rstats.Recovery.committed_txs
       rstats.Recovery.objects_applied (replay_ns /. 1e6) records_per_sec);
  Buffer.add_string buf "}\n";
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents buf));
  Printf.printf "\nwrote %s\n%!" path

let () =
  let quick = Array.exists (String.equal "--quick") Sys.argv in
  let json_path =
    let rec scan i =
      if i >= Array.length Sys.argv - 1 then None
      else if String.equal Sys.argv.(i) "--json" then Some Sys.argv.(i + 1)
      else scan (i + 1)
    in
    scan 1
  in
  print_endline "==============================================================";
  print_endline " Composite Objects Revisited (SIGMOD 1989) - experiment suite";
  print_endline "==============================================================";
  let experiments_ok = run_reports () in
  if quick && json_path <> None then
    prerr_endline "warning: --json needs the timed benchmarks; ignored with --quick";
  if not quick then begin
    print_endline "";
    print_endline "=== Timed micro-benchmarks (Bechamel) ===";
    let rows = run_benchmarks () in
    match json_path with
    | Some path -> write_bench_json ~path rows
    | None -> ()
  end;
  if not experiments_ok then exit 1
