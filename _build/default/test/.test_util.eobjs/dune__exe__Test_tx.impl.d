test/test_tx.ml: Alcotest Core_error Database Format Gen Integrity List Object_manager Oid Orion_core Orion_locking Orion_schema Orion_tx Orion_workload Printf QCheck QCheck_alcotest Traversal Value
