open Orion_core
module A = Orion_schema.Attribute
module D = Orion_schema.Domain
module Schema = Orion_schema.Schema
module VM = Orion_versions.Version_manager
module Evolution = Orion_evolution.Evolution
module Change = Orion_evolution.Change
module Auth = Orion_authz.Auth
module Authz = Orion_authz.Authz_manager
module Lock_mode = Orion_locking.Lock_mode
module Lock_table = Orion_locking.Lock_table
module Protocol = Orion_locking.Protocol
module Table = Orion_util.Table
module Scenarios = Orion_workload.Scenarios
module Eval = Orion_dsl.Eval

let define db ?superclasses ?versionable ?segment name attrs =
  ignore
    (Schema.define (Database.schema db) ?superclasses ?versionable ?segment
       ~name ~attributes:attrs ()
      : Orion_schema.Class_def.t)

let comp ?(dependent = true) ?(exclusive = true) () = A.composite ~dependent ~exclusive ()

let cattr ?dependent ?exclusive ?(collection = A.Single) name domain =
  A.make ~collection ~refkind:(comp ?dependent ?exclusive ()) ~name
    ~domain:(D.Class domain) ()

let rejects_topology f =
  match f () with
  | exception Core_error.Error (Core_error.Topology_violation _) -> true
  | _ -> false

(* Figure 1 -------------------------------------------------------------- *)

let fig1_derive_copy () =
  let db = Database.create () in
  define db ~versionable:true "D" [];
  define db ~versionable:true "C"
    [
      cattr ~dependent:false "Part" "D";
      cattr ~dependent:true "DepPart" "D";
      cattr ~dependent:false ~exclusive:false "SharedPart" "D";
    ];
  let d_k = Object_manager.create db ~cls:"D" () in
  let d_dep = Object_manager.create db ~cls:"D" () in
  let d_sh = Object_manager.create db ~cls:"D" () in
  let c_i =
    Object_manager.create db ~cls:"C"
      ~attrs:
        [
          ("Part", Value.Ref d_k);
          ("DepPart", Value.Ref d_dep);
          ("SharedPart", Value.Ref d_sh);
        ]
      ()
  in
  let c_j = VM.derive db c_i in
  let g_d = VM.generic_of db d_k in
  let part' = Object_manager.read_attr db c_j "Part" in
  let dep' = Object_manager.read_attr db c_j "DepPart" in
  let shared' = Object_manager.read_attr db c_j "SharedPart" in
  Report.make ~id:"F1" ~title:"Deriving a new version of a composite object"
    ~body:
      (Format.asprintf
         "c_i = %a  statically bound: Part->%a DepPart->%a SharedPart->%a@.\
          c_j = derive(c_i): Part=%a DepPart=%a SharedPart=%a"
         Oid.pp c_i Oid.pp d_k Oid.pp d_dep Oid.pp d_sh Value.pp part' Value.pp
         dep' Value.pp shared')
    ~checks:
      [
        ( "independent exclusive static reference rebinds to the generic (Fig 1.b)",
          Value.equal part' (Value.Ref g_d) );
        ("dependent exclusive reference is set to Nil", Value.equal dep' Value.Null);
        ( "shared static reference copies as is",
          Value.equal shared' (Value.Ref d_sh) );
        ("derivation recorded", VM.derived_from db c_j = Some c_i);
        ("integrity", Integrity.check db = []);
      ]
    ()

(* Figure 2 -------------------------------------------------------------- *)

let fig2_versioned_topology () =
  let db = Database.create () in
  define db ~versionable:true "D" [];
  define db ~versionable:true "C" [ cattr ~dependent:false "Part" "D" ];
  define db ~versionable:true "C2" [ cattr ~dependent:false "Part" "D" ];
  let d_0 = Object_manager.create db ~cls:"D" () in
  let c_0 = Object_manager.create db ~cls:"C" ~attrs:[ ("Part", Value.Ref d_0) ] () in
  let c_1 = VM.derive db c_0 in
  let d_1 = VM.derive db d_0 in
  (* Versions c_0 and c_1 of g_c reference versions d_0 and d_1 of g_d. *)
  VM.bind_statically db ~holder:c_1 ~attr:"Part" ~version:d_1;
  let second_exclusive_to_same_version () =
    let c2 = Object_manager.create db ~cls:"C2" () in
    Object_manager.write_attr db c2 "Part" (Value.Ref d_0)
  in
  let other_hierarchy_to_generic () =
    let c2 = Object_manager.create db ~cls:"C2" () in
    Object_manager.write_attr db c2 "Part" (Value.Ref (VM.generic_of db d_0))
  in
  Report.make ~id:"F2" ~title:"Versioned composite objects (rules CV-1X/CV-2X)"
    ~body:
      (Format.asprintf "c0=%a -> d0=%a; c1=%a -> d1=%a (both exclusive, same hierarchy)"
         Oid.pp c_0 Oid.pp d_0 Oid.pp c_1 Oid.pp d_1)
    ~checks:
      [
        ( "distinct versions may reference distinct versions of the same object",
          Value.equal (Object_manager.read_attr db c_1 "Part") (Value.Ref d_1) );
        ( "second exclusive reference to an already-referenced version rejected",
          rejects_topology second_exclusive_to_same_version );
        ( "exclusive reference from another hierarchy rejected (CV-2X)",
          rejects_topology other_hierarchy_to_generic );
        ("integrity", Integrity.check db = []);
      ]
    ()

(* Figure 3 -------------------------------------------------------------- *)

let fig3_refcounts () =
  let db = Database.create () in
  define db ~versionable:true "B" [];
  define db ~versionable:true "A" [ cattr ~dependent:false "Ref" "B" ];
  let b0 = Object_manager.create db ~cls:"B" () in
  let a0 = Object_manager.create db ~cls:"A" ~attrs:[ ("Ref", Value.Ref b0) ] () in
  let g_a = VM.generic_of db a0 and g_b = VM.generic_of db b0 in
  let gref_count () =
    match Instance.generic_info (Database.get db g_b) with
    | Some gi -> (
        match
          List.find_opt (fun (g : Rref.gref) -> Oid.equal g.Rref.g_parent g_a) gi.grefs
        with
        | Some g -> g.Rref.count
        | None -> 0)
    | None -> -1
  in
  let count_a = gref_count () in
  (* Figure 3.b: a second version pair with a static reference. *)
  let a1 = VM.derive db a0 in
  let b1 = VM.derive db b0 in
  VM.bind_statically db ~holder:a1 ~attr:"Ref" ~version:b1;
  let count_b = gref_count () in
  let parents_of_generic = Traversal.parents_of db g_b in
  (* Remove a0.v -> b0.v: count decrements, gref stays. *)
  Object_manager.write_attr db a0 "Ref" Value.Null;
  let count_after_first_removal = gref_count () in
  (* Remove a1.v -> b1.v: count reaches zero, gref disappears. *)
  Object_manager.write_attr db a1 "Ref" Value.Null;
  let count_after_second_removal = gref_count () in
  Report.make ~id:"F3" ~title:"Reverse composite generic references and ref-counts"
    ~body:
      (Format.asprintf
         "ref-count(g_b <- g_a): one static ref: %d; two static refs: %d;@.\
          after removing first: %d; after removing second: %d"
         count_a count_b count_after_first_removal count_after_second_removal)
    ~checks:
      [
        ("ref-count 1 with one reference (Fig 3.a)", count_a = 1);
        ("ref-count 2 with two references (Fig 3.b)", count_b = 2);
        ( "parents-of on the generic answers the parent generic",
          parents_of_generic = [ g_a ] );
        ("removal decrements but keeps the generic reference", count_after_first_removal = 1);
        ("last removal drops the generic reference", count_after_second_removal = 0);
        ("integrity", Integrity.check db = []);
      ]
    ()

(* Figures 4 and 5: implicit authorization ------------------------------- *)

(* A five-object composite rooted at [i]: i -> {k, j}; j -> {m, n}. *)
let authz_fixture () =
  let db = Database.create () in
  define db "Node" [];
  define db ~superclasses:[ "Node" ] "Holder"
    [ cattr ~dependent:false ~exclusive:false ~collection:A.Set "Parts" "Node" ];
  let node ?parents () =
    Object_manager.create db ~cls:"Node" ?parents ()
  in
  let holder ?parents () = Object_manager.create db ~cls:"Holder" ?parents () in
  (db, node, holder)

let fig4_authz_composite () =
  let db, node, holder = authz_fixture () in
  let i = holder () in
  let k = node ~parents:[ (i, "Parts") ] () in
  let j = holder ~parents:[ (i, "Parts") ] () in
  let m = node ~parents:[ (j, "Parts") ] () in
  let n = node ~parents:[ (j, "Parts") ] () in
  let authz = Authz.create db in
  let ok_grant =
    Authz.grant authz ~subject:"kim" ~auth:(Auth.make Auth.Read)
      ~target:(Authz.On_object i)
    = Ok ()
  in
  let all_read =
    List.for_all
      (fun oid -> Authz.check authz ~subject:"kim" ~op:Auth.Read oid)
      [ i; k; j; m; n ]
  in
  let none_write =
    List.for_all
      (fun oid -> not (Authz.check authz ~subject:"kim" ~op:Auth.Write oid))
      [ i; k; j; m; n ]
  in
  (* A conflicting strong negative on a component is rejected. *)
  let conflict_rejected =
    match
      Authz.grant authz ~subject:"kim"
        ~auth:(Auth.make ~sign:Auth.Negative Auth.Read)
        ~target:(Authz.On_object m)
    with
    | Error _ -> true
    | Ok () -> false
  in
  Report.make ~id:"F4" ~title:"Implicit authorization on a composite object"
    ~checks:
      [
        ("Read grant on the root accepted", ok_grant);
        ("implicit Read on every component", all_read);
        ("no Write implied", none_write);
        ("conflicting strong ¬R on a component rejected", conflict_rejected);
      ]
    ()

let fig5_shared_authz () =
  let db, node, holder = authz_fixture () in
  let j = holder () and k = holder () in
  let o' = node ~parents:[ (j, "Parts"); (k, "Parts") ] () in
  let authz = Authz.create db in
  let grant_exn subject auth target =
    match Authz.grant authz ~subject ~auth ~target with
    | Ok () -> ()
    | Error _ -> failwith "unexpected grant conflict"
  in
  (* §6: sR from j and sW from k combine to sW on o'. *)
  grant_exn "u1" (Auth.make Auth.Read) (Authz.On_object j);
  grant_exn "u1" (Auth.make Auth.Write) (Authz.On_object k);
  let u1 = Auth.display (Authz.implied_on authz ~subject:"u1" o') in
  (* §6: s¬R from j and s¬W from k combine to s¬R. *)
  grant_exn "u2" (Auth.make ~sign:Auth.Negative Auth.Read) (Authz.On_object j);
  grant_exn "u2" (Auth.make ~sign:Auth.Negative Auth.Write) (Authz.On_object k);
  let u2 = Auth.display (Authz.implied_on authz ~subject:"u2" o') in
  (* §6: after s¬R from j, granting sW on k must fail. *)
  grant_exn "u3" (Auth.make ~sign:Auth.Negative Auth.Read) (Authz.On_object j);
  let u3_rejected =
    match
      Authz.grant authz ~subject:"u3" ~auth:(Auth.make Auth.Write)
        ~target:(Authz.On_object k)
    with
    | Error _ -> true
    | Ok () -> false
  in
  Report.make ~id:"F5" ~title:"Implicit authorizations on a shared component"
    ~body:(Printf.sprintf "u1: sR(j) + sW(k) on o' => %s\nu2: s¬R(j) + s¬W(k) on o' => %s" u1 u2)
    ~checks:
      [
        ("sR + sW combine to sW (strongest wins)", u1 = "sW");
        ("s¬R + s¬W combine to s¬R", u2 = Auth.to_string (Auth.make ~sign:Auth.Negative Auth.Read));
        ("sW after s¬R rejected (¬R implies ¬W)", u3_rejected);
      ]
    ()

(* Figure 6 -------------------------------------------------------------- *)

let fig6_matrix () =
  let labels = List.map Auth.to_string Auth.all in
  let cell i j =
    Auth.display (Auth.combine [ List.nth Auth.all i; List.nth Auth.all j ])
  in
  let body =
    Table.render_matrix ~row_labels:labels ~col_labels:labels ~cell
      ~corner:"on j \\ on k"
  in
  let at r c = cell r c in
  (* Indices: 0 sR, 1 sW, 2 s¬R, 3 s¬W, 4 wR, 5 wW, 6 w¬R, 7 w¬W *)
  let neg_r = Auth.to_string (Auth.make ~sign:Auth.Negative Auth.Read) in
  Report.make ~id:"F6" ~title:"Authorization combination matrix" ~body
    ~checks:
      [
        ("sR + sW = sW", at 0 1 = "sW");
        ("s¬R + s¬W = s¬R", at 2 3 = neg_r);
        ("s¬R + sW = Conflict", at 2 1 = "Conflict");
        ("sR + s¬W coexist", at 0 3 = "sR " ^ Auth.to_string (Auth.make ~sign:Auth.Negative Auth.Write));
        ( "strong overrides the contradicted weak type; its implication \
           survives (sR + w¬R = sR w¬W)",
          at 0 6
          = "sR "
            ^ Auth.to_string (Auth.make ~strength:Auth.Weak ~sign:Auth.Negative Auth.Write) );
        ("weak-weak contradiction conflicts", at 4 6 = "Conflict");
        ("symmetric", List.for_all (fun i -> List.for_all (fun j -> at i j = at j i) [0;1;2;3;4;5;6;7]) [0;1;2;3;4;5;6;7]);
        ("idempotent diagonal", List.for_all (fun i -> at i i = List.nth labels i) [0;1;2;3]);
      ]
    ()

(* Figures 7 and 8 --------------------------------------------------------- *)

let render_compat modes compat =
  let labels = List.map Lock_mode.to_string modes in
  Table.render_matrix ~row_labels:labels ~col_labels:labels
    ~cell:(fun i j ->
      if compat (List.nth modes i) (List.nth modes j) then "+" else "No")
    ~corner:"held \\ req"

let fig7_matrix () =
  let open Lock_mode in
  let body = render_compat basic compat in
  Report.make ~id:"F7"
    ~title:"Compatibility: granularity + exclusive composite locking" ~body
    ~checks:
      [
        ("IS and IX do not conflict", compat IS IX);
        ("ISO conflicts with IX", not (compat ISO IX));
        ("IXO conflicts with IS and IX", (not (compat IXO IS)) && not (compat IXO IX));
        ("SIXO conflicts with IS and IX", (not (compat SIXO IS)) && not (compat SIXO IX));
        ("ISO compatible with IS (readers coexist)", compat ISO IS);
        ( "several readers and writers on an exclusive component class",
          compat ISO ISO && compat ISO IXO && compat IXO IXO );
        ( "classic granularity sub-matrix",
          compat IS IS && compat IS IX && compat IS S && compat IS SIX
          && (not (compat IS X)) && compat IX IX
          && (not (compat IX S))
          && (not (compat IX SIX))
          && (not (compat IX X))
          && compat S S
          && (not (compat S SIX))
          && (not (compat S X))
          && (not (compat SIX SIX))
          && not (compat X X) );
        ( "symmetric",
          List.for_all
            (fun a -> List.for_all (fun b -> compat a b = compat b a) basic)
            basic );
      ]
    ()

let fig8_matrix () =
  let open Lock_mode in
  let body = render_compat all compat in
  let corresponds m_s m_o =
    List.for_all (fun d -> compat m_s d = compat m_o d) [ IS; IX; S; SIX; X ]
  in
  let refined_gains =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            if (not (compat a b)) && compat_refined a b then
              Some (Lock_mode.to_string a ^ "/" ^ Lock_mode.to_string b)
            else None)
          all)
      all
  in
  Report.make ~id:"F8"
    ~title:"Compatibility: shared/exclusive composite object locking"
    ~body:
      (body ^ "\nRefined matrix (ablation A3) additionally admits: "
      ^ String.concat " " refined_gains)
    ~checks:
      [
        ("several readers on a shared component class", compat ISOS ISOS);
        ("only one writer on a shared component class", not (compat IXOS IXOS));
        ("readers exclude the writer (shared)", not (compat ISOS IXOS));
        ("IXO compatible with ISOS (Fig 9 examples 1 and 2)", compat IXO ISOS);
        ("IXO conflicts with IXOS (example 3 vs 1)", not (compat IXO IXOS));
        ("ISOS corresponds to ISO towards plain modes", corresponds ISOS ISO);
        ("IXOS corresponds to IXO towards plain modes", corresponds IXOS IXO);
        ("SIXOS corresponds to SIXO towards plain modes", corresponds SIXOS SIXO);
        ( "refined matrix admits exclusive-vs-shared write pairs",
          Lock_mode.compat_refined IXO IXOS && not (compat IXO IXOS) );
        ( "symmetric",
          List.for_all
            (fun a -> List.for_all (fun b -> compat a b = compat b a) all)
            all );
      ]
    ()

(* Figure 9 ----------------------------------------------------------------- *)

let fig9_fixture () =
  let db = Database.create () in
  define db "W" [];
  define db "C" [ cattr ~dependent:false ~collection:A.Set "Ws" "W" ];
  define db "I" [ cattr ~dependent:false ~collection:A.Set "Cs" "C" ];
  define db "J"
    [ cattr ~dependent:false ~exclusive:false ~collection:A.Set "Cs" "C" ];
  define db "K"
    [ cattr ~dependent:false ~exclusive:false ~collection:A.Set "Cs" "C" ];
  let i = Object_manager.create db ~cls:"I" () in
  let j = Object_manager.create db ~cls:"J" () in
  let k = Object_manager.create db ~cls:"K" () in
  (db, i, j, k)

let fig9_protocol () =
  let db, i, j, k = fig9_fixture () in
  let set1 = Protocol.composite_object_locks db ~root:i Protocol.Update in
  let set2 = Protocol.composite_object_locks db ~root:k Protocol.Read_ in
  let set3 = Protocol.composite_object_locks db ~root:j Protocol.Update in
  let show set =
    String.concat ", "
      (List.map
         (fun (g, m) ->
           Format.asprintf "%a:%a" Lock_table.pp_granule g Lock_mode.pp m)
         set)
  in
  (* Execute against the lock table. *)
  let table = Lock_table.create () in
  let r1 = Protocol.acquire_all table ~tx:1 set1 in
  let r2 = Protocol.acquire_all table ~tx:2 set2 in
  let r3 = Protocol.acquire_all table ~tx:3 set3 in
  Report.make ~id:"F9" ~title:"Composite locking protocol (§7 examples 1-3)"
    ~body:
      (Printf.sprintf "T1 (update composite i): %s\nT2 (read composite k):   %s\nT3 (update composite j): %s"
         (show set1) (show set2) (show set3))
    ~checks:
      [
        ( "example 1 uses IXO on the exclusive component class C",
          List.mem (Lock_table.G_class "C", Lock_mode.IXO) set1 );
        ( "example 2 uses ISOS on C and ISO on W",
          List.mem (Lock_table.G_class "C", Lock_mode.ISOS) set2
          && List.mem (Lock_table.G_class "W", Lock_mode.ISO) set2 );
        ( "example 3 uses IXOS on C and IXO on W",
          List.mem (Lock_table.G_class "C", Lock_mode.IXOS) set3
          && List.mem (Lock_table.G_class "W", Lock_mode.IXO) set3 );
        ( "examples 1 and 2 are compatible",
          Protocol.compatible_lock_sets set1 set2 () );
        ( "example 3 incompatible with example 1",
          not (Protocol.compatible_lock_sets set3 set1 ()) );
        ( "example 3 incompatible with example 2",
          not (Protocol.compatible_lock_sets set3 set2 ()) );
        ("lock table grants T1 and T2", r1 = `Granted && r2 = `Granted);
        ("lock table blocks T3", match r3 with `Blocked _ -> true | `Granted -> false);
        ( "T3 proceeds after T1 and T2 release",
          (let _ = Lock_table.release_all table ~tx:1 in
           let _ = Lock_table.release_all table ~tx:2 in
           Protocol.acquire_all table ~tx:3 set3 = `Granted) );
      ]
    ()

(* GARZ88 root-locking anomaly ------------------------------------------------ *)

let garz88_anomaly () =
  let db = Database.create () in
  define db "Part" [];
  define db ~superclasses:[ "Part" ] "Asm"
    [ cattr ~dependent:false ~exclusive:false ~collection:A.Set "Parts" "Part" ];
  (* Figure 5 shape: roots j and k share o'; root o has component q which
     is also shared with k. *)
  let j = Object_manager.create db ~cls:"Asm" () in
  let k = Object_manager.create db ~cls:"Asm" () in
  let o = Object_manager.create db ~cls:"Asm" () in
  let o' =
    Object_manager.create db ~cls:"Part" ~parents:[ (j, "Parts"); (k, "Parts") ] ()
  in
  let q =
    Object_manager.create db ~cls:"Part" ~parents:[ (o, "Parts"); (k, "Parts") ] ()
  in
  let t1 = Protocol.root_locking_locks db o' Protocol.Read_ in
  let t2 = Protocol.root_locking_locks db o Protocol.Update in
  let anomaly = Protocol.root_lock_anomaly db ~t1 ~t2 in
  let explicit_disjoint = Protocol.compatible_lock_sets t1 t2 () in
  (* Contrast: an exclusive-only hierarchy has no such overlap. *)
  let db2 = Database.create () in
  define db2 "Part" [];
  define db2 ~superclasses:[ "Part" ] "Asm"
    [ cattr ~dependent:false ~exclusive:true ~collection:A.Set "Parts" "Part" ];
  let r1 = Object_manager.create db2 ~cls:"Asm" () in
  let r2 = Object_manager.create db2 ~cls:"Asm" () in
  let c1 = Object_manager.create db2 ~cls:"Part" ~parents:[ (r1, "Parts") ] () in
  ignore (Object_manager.create db2 ~cls:"Part" ~parents:[ (r2, "Parts") ] () : Oid.t);
  let x1 = Protocol.root_locking_locks db2 c1 Protocol.Read_ in
  let x2 = Protocol.root_locking_locks db2 r2 Protocol.Update in
  let exclusive_clean = Protocol.root_lock_anomaly db2 ~t1:x1 ~t2:x2 = [] in
  Report.make ~id:"G1" ~title:"[GARZ88] root locking breaks on shared references"
    ~body:
      (Format.asprintf
         "T1 locks roots of o' (S): %d locks; T2 locks o (X): %d locks;@.\
          conflicting implicit locks: %s"
         (List.length t1) (List.length t2)
         (String.concat ", "
            (List.map
               (fun (oid, m1, m2) ->
                 Format.asprintf "%a (%a vs %a)" Oid.pp oid Lock_mode.pp m1
                   Lock_mode.pp m2)
               anomaly)))
    ~checks:
      [
        ( "explicit lock sets do not conflict (the algorithm grants both)",
          explicit_disjoint );
        ( "yet implicit locks conflict on the shared component q",
          List.exists (fun (oid, _, _) -> Oid.equal oid q) anomaly );
        ("exclusive-only hierarchies show no anomaly", exclusive_clean);
      ]
    ()

(* §2.3 worked examples through the DSL ---------------------------------------- *)

let example1_vehicle () =
  let env = Eval.create_env () in
  let run src = Eval.eval_string env src in
  let expect_bool src = match run src with Eval.Bool b -> b | _ -> false in
  ignore
    (Eval.eval_program env
       {|
(make-class 'Company :attributes ((Name :domain String)))
(make-class 'AutoBody :attributes ((Name :domain String)))
(make-class 'AutoDrivetrain :attributes ((Name :domain String)))
(make-class 'AutoTires :attributes ((Name :domain String)))
(make-class 'Vehicle :superclasses nil :attributes (
  (Manufacturer :domain Company)
  (Body       :domain AutoBody       :composite true :exclusive true :dependent nil)
  (Drivetrain :domain AutoDrivetrain :composite true :exclusive true :dependent nil)
  (Tires      :domain (set-of AutoTires) :composite true :exclusive true :dependent nil)
  (Color :domain String)))
(setq body (make AutoBody :Name "sedan body"))
(setq train (make AutoDrivetrain :Name "V6"))
(setq tire1 (make AutoTires)) (setq tire2 (make AutoTires))
(setq v1 (make Vehicle :Color "red" :Body body :Drivetrain train :Tires (tire1 tire2)))
(setq v2 (make Vehicle :Color "blue"))
|}
      : Eval.v list);
  let exclusive_enforced =
    match run "(add-component v2 Body body)" with
    | exception Core_error.Error (Core_error.Topology_violation _) -> true
    | _ -> false
  in
  let compositep = expect_bool "(compositep Vehicle)" in
  let body_is_component = expect_bool "(component-of body v1)" in
  let body_excl = expect_bool "(exclusive-component-of body v1)" in
  ignore (run "(delete v1)" : Eval.v);
  let body_survives =
    match run "(describe body)" with Eval.Str _ -> true | _ -> false
  in
  let reuse_ok =
    match run "(add-component v2 Body body)" with Eval.Unit -> true | _ -> false
  in
  let integrity = match run "(integrity-check)" with
    | Eval.Str "consistent" -> true
    | _ -> false
  in
  Report.make ~id:"E1" ~title:"Example 1: Vehicle physical part hierarchy (DSL)"
    ~checks:
      [
        ("compositep Vehicle", compositep);
        ("body is an exclusive component of v1", body_is_component && body_excl);
        ("a part cannot join a second vehicle", exclusive_enforced);
        ("parts survive dismantling (independent references)", body_survives);
        ("parts are re-usable for other vehicles", reuse_ok);
        ("integrity", integrity);
      ]
    ()

let example2_document () =
  let env = Eval.create_env () in
  let db = Eval.database env in
  let run src = Eval.eval_string env src in
  ignore
    (Eval.eval_program env
       {|
(make-class 'Paragraph :attributes ((Text :domain String)))
(make-class 'Image :attributes ((File :domain String)))
(make-class 'Section :attributes (
  (Content :domain (set-of Paragraph) :composite true :exclusive nil :dependent true)))
(make-class 'Document :attributes (
  (Title :domain String)
  (Authors :domain (set-of String))
  (Sections :domain (set-of Section) :composite true :exclusive nil :dependent true)
  (Figures  :domain (set-of Image)   :composite true :exclusive nil :dependent nil)
  (Annotations :domain (set-of Paragraph) :composite true :exclusive true :dependent true)))
(setq doc1 (make Document :Title "Composite Objects Revisited"))
(setq doc2 (make Document :Title "Object-Oriented Databases"))
(setq sec (make Section :parent ((doc1 Sections) (doc2 Sections))))
(setq para (make Paragraph :parent ((sec Content)) :Text "shared paragraph"))
(setq img (make Image :parent ((doc1 Figures)) :File "fig.png"))
(setq note (make Paragraph :parent ((doc1 Annotations)) :Text "margin note"))
|}
      : Eval.v list);
  let oid name = Option.get (Eval.lookup env name) in
  let sec = oid "sec" and para = oid "para" and img = oid "img" and note = oid "note" in
  let shared_between_docs =
    match run "(parents-of sec)" with Eval.Objs l -> List.length l = 2 | _ -> false
  in
  ignore (run "(delete doc1)" : Eval.v);
  let after_doc1 =
    Database.exists db sec && Database.exists db para && Database.exists db img
    && not (Database.exists db note)
  in
  ignore (run "(delete doc2)" : Eval.v);
  let after_doc2 =
    (not (Database.exists db sec))
    && (not (Database.exists db para))
    && Database.exists db img
  in
  Report.make ~id:"E2" ~title:"Example 2: Document logical part hierarchy (DSL)"
    ~checks:
      [
        ("a section is shared between two documents", shared_between_docs);
        ( "deleting one document keeps shared sections; annotations die with it",
          after_doc1 );
        ( "deleting the last document deletes sections and paragraphs; images survive",
          after_doc2 );
        ("integrity", Integrity.check db = []);
      ]
    ()

(* Semantic tables -------------------------------------------------------------- *)

let t1_deletion_semantics () =
  let run ~dependent ~exclusive =
    let db = Database.create () in
    define db "Child" [];
    define db "Parent"
      [ cattr ~dependent ~exclusive ~collection:A.Set "Kids" "Child" ];
    let p1 = Object_manager.create db ~cls:"Parent" () in
    let c = Object_manager.create db ~cls:"Child" ~parents:[ (p1, "Kids") ] () in
    let extra_parent =
      if exclusive then None
      else begin
        let p2 = Object_manager.create db ~cls:"Parent" () in
        Object_manager.make_component db ~parent:p2 ~attr:"Kids" ~child:c;
        Some p2
      end
    in
    Object_manager.delete db p1;
    let survives_first = Database.exists db c in
    let survives_last =
      match extra_parent with
      | None -> survives_first
      | Some p2 ->
          Object_manager.delete db p2;
          Database.exists db c
    in
    (survives_first, survives_last, Integrity.check db = [])
  in
  let dx = run ~dependent:true ~exclusive:true in
  let ix = run ~dependent:false ~exclusive:true in
  let ds = run ~dependent:true ~exclusive:false in
  let is_ = run ~dependent:false ~exclusive:false in
  let table = Table.create ~headers:[ "reference type"; "del(O') => del(O)?"; "observed" ] in
  Table.add_row table [ "dependent exclusive"; "yes"; (if not (let a,_,_ = dx in a) then "deleted" else "survived") ];
  Table.add_row table [ "independent exclusive"; "no"; (if let a,_,_ = ix in a then "survived" else "deleted") ];
  Table.add_row table [ "dependent shared"; "only when DS(O) = {O'}"; "kept then deleted" ];
  Table.add_row table [ "independent shared"; "no"; (if let _,b,_ = is_ in b then "survived" else "deleted") ];
  let third (_, _, x) = x in
  Report.make ~id:"T1" ~title:"Deletion semantics of the four composite reference types (§2.2)"
    ~body:(Table.render table)
    ~checks:
      [
        ("dependent exclusive: deleted", (let a, _, _ = dx in not a));
        ("independent exclusive: survives", (let a, _, _ = ix in a));
        ( "dependent shared: survives first deletion, dies with the last",
          (let a, b, _ = ds in a && not b) );
        ("independent shared: always survives", (let _, b, _ = is_ in b));
        ("all runs consistent", third dx && third ix && third ds && third is_);
      ]
    ()

let t2_topology_rules () =
  let fresh () =
    let db = Database.create () in
    define db "Child" [];
    define db "Parent"
      [
        cattr ~dependent:true ~exclusive:true ~collection:A.Set "DX" "Child";
        cattr ~dependent:false ~exclusive:true ~collection:A.Set "IX" "Child";
        cattr ~dependent:true ~exclusive:false ~collection:A.Set "DS" "Child";
        cattr ~dependent:false ~exclusive:false ~collection:A.Set "IS" "Child";
        A.make ~name:"WK" ~domain:(D.Class "Child") ~collection:A.Set ();
      ];
    let p1 = Object_manager.create db ~cls:"Parent" () in
    let p2 = Object_manager.create db ~cls:"Parent" () in
    let c = Object_manager.create db ~cls:"Child" () in
    (db, p1, p2, c)
  in
  let attempt first second =
    let db, p1, p2, c = fresh () in
    Object_manager.make_component db ~parent:p1 ~attr:first ~child:c;
    rejects_topology (fun () ->
        Object_manager.make_component db ~parent:p2 ~attr:second ~child:c)
  in
  let weak_alongside =
    let db, p1, p2, c = fresh () in
    Object_manager.make_component db ~parent:p1 ~attr:"DX" ~child:c;
    Object_manager.add_to_set db p1 "WK" c;
    Object_manager.add_to_set db p2 "WK" c;
    Integrity.check db = []
  in
  let table = Table.create ~headers:[ "existing ref"; "new ref"; "rule"; "verdict" ] in
  let record a b rule verdict = Table.add_row table [ a; b; rule; verdict ] in
  let r1 = attempt "DX" "DX" in
  record "DX" "DX" "rule 1" (if r1 then "rejected" else "ACCEPTED?");
  let r2 = attempt "DX" "IX" in
  record "DX" "IX" "rule 2" (if r2 then "rejected" else "ACCEPTED?");
  let r3a = attempt "IX" "DS" in
  record "IX" "DS" "rule 3" (if r3a then "rejected" else "ACCEPTED?");
  let r3b = attempt "IS" "DX" in
  record "IS" "DX" "rule 3" (if r3b then "rejected" else "ACCEPTED?");
  let shared_ok = not (attempt "IS" "DS") in
  record "IS" "DS" "shared may accumulate" (if shared_ok then "accepted" else "REJECTED?");
  record "DX" "WK x2" "rule 4" (if weak_alongside then "accepted" else "REJECTED?");
  Report.make ~id:"T2" ~title:"Topology Rules 1-4 (§2.2)" ~body:(Table.render table)
    ~checks:
      [
        ("rule 1: at most one exclusive reference", r1);
        ("rule 2: IX and DX are mutually exclusive", r2);
        ("rule 3: exclusive excludes shared", r3a && r3b);
        ("shared references accumulate freely", shared_ok);
        ("rule 4: weak references are unrestricted", weak_alongside);
      ]
    ()

let t3_evolution_taxonomy () =
  let fresh_pair ~refkind =
    let db = Database.create () in
    define db "C" [];
    define db "Cp"
      [ A.make ~name:"A" ~domain:(D.Class "C") ~collection:A.Set ~refkind () ];
    let ev = Evolution.attach db in
    (db, ev)
  in
  let link db holder target = Object_manager.make_component db ~parent:holder ~attr:"A" ~child:target in
  let weak_link db holder target = Object_manager.add_to_set db holder "A" target in
  (* I2: exclusive -> shared. *)
  let i2 =
    let db, ev = fresh_pair ~refkind:(comp ~exclusive:true ~dependent:true ()) in
    let h = Object_manager.create db ~cls:"Cp" () in
    let c = Object_manager.create db ~cls:"C" () in
    link db h c;
    match
      Evolution.change_attribute_type ev ~cls:"Cp" ~attr:"A"
        ~to_:(comp ~exclusive:false ~dependent:true ())
        ()
    with
    | Ok [ Change.I2 ] ->
        (* Sharing is possible afterwards. *)
        let h2 = Object_manager.create db ~cls:"Cp" () in
        link db h2 c;
        Integrity.check db = []
    | _ -> false
  in
  (* I3/I4 deferred: flags catch up on access. *)
  let i3_deferred =
    let db, ev = fresh_pair ~refkind:(comp ~exclusive:true ~dependent:true ()) in
    let h = Object_manager.create db ~cls:"Cp" () in
    let c = Object_manager.create db ~cls:"C" () in
    link db h c;
    match
      Evolution.change_attribute_type ev ~mode:Evolution.Deferred ~cls:"Cp"
        ~attr:"A"
        ~to_:(comp ~exclusive:true ~dependent:false ())
        ()
    with
    | Ok [ Change.I3 ] ->
        (* The access hook rewrites the D flag lazily. *)
        let refs = Database.rrefs db (Database.get db c).Instance.oid in
        List.for_all (fun (r : Rref.t) -> not r.Rref.dependent) refs
        && Integrity.check db = []
    | _ -> false
  in
  (* I1: composite -> weak. *)
  let i1 =
    let db, ev = fresh_pair ~refkind:(comp ~exclusive:true ~dependent:true ()) in
    let h = Object_manager.create db ~cls:"Cp" () in
    let c = Object_manager.create db ~cls:"C" () in
    link db h c;
    match
      Evolution.change_attribute_type ev ~cls:"Cp" ~attr:"A" ~to_:A.Weak ()
    with
    | Ok [ Change.I1 ] ->
        Database.rrefs db c = [] && Database.exists db c && Integrity.check db = []
    | _ -> false
  in
  (* D1 success and failure. *)
  let d1_ok =
    let db, ev = fresh_pair ~refkind:A.Weak in
    let h = Object_manager.create db ~cls:"Cp" () in
    let c = Object_manager.create db ~cls:"C" () in
    weak_link db h c;
    match
      Evolution.change_attribute_type ev ~cls:"Cp" ~attr:"A"
        ~to_:(comp ~exclusive:true ~dependent:false ())
        ()
    with
    | Ok [ Change.D1 ] ->
        List.length (Database.rrefs db c) = 1 && Integrity.check db = []
    | _ -> false
  in
  let d1_rejected =
    let db, ev = fresh_pair ~refkind:A.Weak in
    define db "Other" [ cattr ~dependent:false "R" "C" ];
    let h = Object_manager.create db ~cls:"Cp" () in
    let c = Object_manager.create db ~cls:"C" () in
    weak_link db h c;
    let other = Object_manager.create db ~cls:"Other" () in
    Object_manager.make_component db ~parent:other ~attr:"R" ~child:c;
    match
      Evolution.change_attribute_type ev ~cls:"Cp" ~attr:"A"
        ~to_:(comp ~exclusive:true ~dependent:false ())
        ()
    with
    | Error (Evolution.Target_already_composite _) -> true
    | _ -> false
  in
  (* D2 rejected when an exclusive reference exists. *)
  let d2_rejected =
    let db, ev = fresh_pair ~refkind:A.Weak in
    define db "Other" [ cattr ~dependent:false ~exclusive:true "R" "C" ];
    let h = Object_manager.create db ~cls:"Cp" () in
    let c = Object_manager.create db ~cls:"C" () in
    weak_link db h c;
    let other = Object_manager.create db ~cls:"Other" () in
    Object_manager.make_component db ~parent:other ~attr:"R" ~child:c;
    match
      Evolution.change_attribute_type ev ~cls:"Cp" ~attr:"A"
        ~to_:(comp ~exclusive:false ~dependent:false ())
        ()
    with
    | Error (Evolution.Target_has_exclusive _) -> true
    | _ -> false
  in
  (* D3: shared -> exclusive rejected when shared twice. *)
  let d3_rejected =
    let db, ev = fresh_pair ~refkind:(comp ~exclusive:false ~dependent:false ()) in
    let h1 = Object_manager.create db ~cls:"Cp" () in
    let h2 = Object_manager.create db ~cls:"Cp" () in
    let c = Object_manager.create db ~cls:"C" () in
    link db h1 c;
    link db h2 c;
    match
      Evolution.change_attribute_type ev ~cls:"Cp" ~attr:"A"
        ~to_:(comp ~exclusive:true ~dependent:false ())
        ()
    with
    | Error (Evolution.Target_shared_elsewhere _) -> true
    | _ -> false
  in
  let d3_ok =
    let db, ev = fresh_pair ~refkind:(comp ~exclusive:false ~dependent:false ()) in
    let h1 = Object_manager.create db ~cls:"Cp" () in
    let c = Object_manager.create db ~cls:"C" () in
    link db h1 c;
    match
      Evolution.change_attribute_type ev ~cls:"Cp" ~attr:"A"
        ~to_:(comp ~exclusive:true ~dependent:false ())
        ()
    with
    | Ok [ Change.D3 ] ->
        List.for_all
          (fun (r : Rref.t) -> r.Rref.exclusive)
          (Database.rrefs db c)
        && Integrity.check db = []
    | _ -> false
  in
  let table =
    Table.create ~headers:[ "change"; "class"; "expected"; "observed" ]
  in
  List.iter
    (fun (change, cls, expected, passed) ->
      Table.add_row table
        [ change; cls; expected; (if passed then "as expected" else "MISMATCH") ])
    [
      ("composite -> weak", "I1 (state-independent)", "reverse refs dropped, objects kept", i1);
      ("exclusive -> shared", "I2 (state-independent)", "X flags cleared, sharing allowed", i2);
      ("dependent -> independent (deferred)", "I3 (state-independent)", "D flags rewritten on access", i3_deferred);
      ("weak -> exclusive (clean)", "D1 (state-dependent)", "accepted, reverse refs added", d1_ok);
      ("weak -> exclusive (target composite)", "D1", "rejected", d1_rejected);
      ("weak -> shared (target exclusive)", "D2", "rejected (Topology Rule 3)", d2_rejected);
      ("shared -> exclusive (one ref)", "D3", "accepted, X flags set", d3_ok);
      ("shared -> exclusive (two refs)", "D3", "rejected", d3_rejected);
    ];
  Report.make ~id:"T3" ~title:"Attribute type change taxonomy (§4.2)"
    ~body:(Table.render table)
    ~checks:
      [
        ("I1", i1);
        ("I2", i2);
        ("I3 deferred", i3_deferred);
        ("D1 accepted on clean state", d1_ok);
        ("D1 rejected on composite target", d1_rejected);
        ("D2 rejected on exclusive target", d2_rejected);
        ("D3 accepted on single reference", d3_ok);
        ("D3 rejected on shared target", d3_rejected);
      ]
    ()

let all () =
  [
    fig1_derive_copy ();
    fig2_versioned_topology ();
    fig3_refcounts ();
    fig4_authz_composite ();
    fig5_shared_authz ();
    fig6_matrix ();
    fig7_matrix ();
    fig8_matrix ();
    fig9_protocol ();
    garz88_anomaly ();
    example1_vehicle ();
    example2_document ();
    t1_deletion_semantics ();
    t2_topology_rules ();
    t3_evolution_taxonomy ();
  ]
