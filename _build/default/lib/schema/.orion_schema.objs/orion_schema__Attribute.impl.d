lib/schema/attribute.ml: Domain Format
