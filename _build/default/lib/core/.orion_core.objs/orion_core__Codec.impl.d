lib/core/codec.ml: Bytes Database Instance List Oid Orion_storage Printf Rref Value
