lib/evolution/evolution.mli: Change Database Format Instance Oid Orion_core Orion_schema
