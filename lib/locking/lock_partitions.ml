(* The lock space sliced into N partitions, each a {!Lock_table} of its
   own behind its own mutex — the partitioned lock service the paper's
   composite clustering makes natural.  Granules are keyed exactly the
   way storage clusters them: a class granule follows its storage
   segment (composite hierarchies are co-segmented at [make] time, so a
   root's whole class-lattice path lands in one partition), an instance
   granule hashes its oid (the composite-object protocol only ever
   locks the root's instance granule, so this keys it by composite
   root; non-composite oids just hash).  The key function must be
   deterministic and stable per granule — both inputs (class of an oid,
   segment of a class) are immutable — or one granule could materialize
   in two partitions and mutual exclusion would silently split.

   Every slice shares one {!Lock_table.instruments} record, so the
   server-wide lock.* counters stay whole; what is per-partition is the
   mutex and its txsvc.partition{p=K}.* instruments.

   Canonical ordering rule: an operation takes at most one partition
   mutex at a time, except the merged deadlock search, which takes all
   of them in ascending partition order (and never while holding the
   transactional core's lock).  Holders of a partition mutex never
   block on another partition or on the core, so the order is acyclic
   and the facade itself can never deadlock.

   Deadlock detection is incremental.  Each partition carries a
   generation, bumped whenever a request blocks there (the only event
   that can add a waits-for edge), and the mark of the last generation
   searched clean.  [find_deadlock] searches only dirty partitions
   locally; the merged (all-partition) search runs only when waiters
   sit in two or more partitions — any cross-partition cycle has
   members queued in at least two partitions, so the trigger is sound —
   and is counted by txsvc.merged_searches. *)

module Obs = Orion_obs.Metrics
module Omutex = Orion_util.Omutex

type partition = {
  idx : int;
  mu : Omutex.t;
  table : Lock_table.t;
  generation : int Atomic.t;
  searched : int Atomic.t;
  acquires : Obs.counter;
  contended : Obs.counter;
  wait_seconds : Obs.histogram;
  hold_seconds : Obs.histogram;
}

type t = {
  parts : partition array;
  merged_searches : Obs.counter;
  mutable key_of : Lock_table.granule -> int;
      (* raw partition key; the facade reduces it mod N *)
}

let default_key = function
  | Lock_table.G_class c -> Hashtbl.hash c
  | Lock_table.G_instance oid -> Orion_core.Oid.hash oid

let pname k field = Printf.sprintf "txsvc.partition{p=%d}.%s" k field

let create ?compat ~n () =
  let n = max 1 n in
  let ins = Lock_table.make_instruments () in
  {
    parts =
      Array.init n (fun idx ->
          {
            idx;
            mu = Omutex.create ~inst:idx Omutex.lock_partition;
            table = Lock_table.create ?compat ~instruments:ins ();
            generation = Atomic.make 0;
            searched = Atomic.make 0;
            acquires = Obs.counter (pname idx "acquires");
            contended = Obs.counter (pname idx "contended");
            wait_seconds = Obs.histogram (pname idx "wait_seconds");
            hold_seconds = Obs.histogram (pname idx "hold_seconds");
          });
    merged_searches = Obs.counter "txsvc.merged_searches";
    key_of = default_key;
  }

let n_partitions t = Array.length t.parts
let set_keyer t f = t.key_of <- f
let set_classifier t f =
  Array.iter (fun p -> Lock_table.set_classifier p.table f) t.parts

let partition_id t granule =
  (t.key_of granule land max_int) mod Array.length t.parts

(* Partition 0's table doubles as "the" table for single-partition
   callers (the in-process scheduler, stats readers): the instruments
   are shared, so its [stats] are the whole space's. *)
let table0 t = t.parts.(0).table

let with_mu p f =
  let t0 = Unix.gettimeofday () in
  if not (Omutex.try_lock p.mu) then begin
    Obs.incr p.contended;
    Omutex.lock p.mu
  end;
  Obs.incr p.acquires;
  let acquired = Unix.gettimeofday () in
  Obs.observe p.wait_seconds (acquired -. t0);
  Fun.protect
    ~finally:(fun () ->
      Obs.observe p.hold_seconds (Unix.gettimeofday () -. acquired);
      Omutex.unlock p.mu)
    f

let blocked_in p result =
  match result with
  | `Blocked ->
      (* A waits-for edge appeared in this partition: dirty it. *)
      ignore (Atomic.fetch_and_add p.generation 1 : int);
      `Blocked
  | `Granted -> `Granted

let acquire t ~tx granule mode =
  let p = t.parts.(partition_id t granule) in
  with_mu p (fun () -> blocked_in p (Lock_table.acquire p.table ~tx granule mode))

let try_acquire t ~tx granule mode =
  let p = t.parts.(partition_id t granule) in
  with_mu p (fun () -> Lock_table.try_acquire p.table ~tx granule mode)

let holds t ~tx granule mode =
  let p = t.parts.(partition_id t granule) in
  with_mu p (fun () -> Lock_table.holds p.table ~tx granule mode)

(* Acquire a whole derived lock set in the CALLER's order.  The
   protocol's canonical root-to-component order is load-bearing: which
   granule a transaction blocks at — and therefore which prefix it
   still holds while waiting — decides whether two opposed updaters
   deadlock (and get one aborted) or serialize.  Regrouping the set by
   partition id would silently reorder it and change those outcomes, so
   instead we walk the list as given, batching only CONSECUTIVE
   granules that share a partition so each run costs one mutex
   round-trip.  Only one partition mutex is ever held at a time, so no
   inter-partition ordering discipline is needed here.  Stops at the
   first blocked granule, like {!Protocol.acquire_all} always has: the
   re-poll re-derives and re-runs the full set anyway. *)
let acquire_set t ~tx locks =
  let rec run p = function
    | (granule, mode) :: rest when partition_id t granule = p.idx -> (
        match blocked_in p (Lock_table.acquire p.table ~tx granule mode) with
        | `Granted -> run p rest
        | `Blocked -> `Blocked (granule, mode))
    | rest -> `Granted_through rest
  in
  let rec go = function
    | [] -> `Granted
    | (granule, _) :: _ as locks -> (
        let p = t.parts.(partition_id t granule) in
        match with_mu p (fun () -> run p locks) with
        | `Blocked (granule, mode) -> `Blocked (granule, mode)
        | `Granted_through rest -> go rest)
  in
  go locks

(* Release everywhere, ascending; each partition promotes its own
   waiters.  A transaction woken in one partition may still be queued
   in another, so the per-table "fully unblocked" filter is re-applied
   across the whole space (one partition mutex at a time — never
   two). *)
let release_all t ~tx =
  let woken = ref [] in
  Array.iter
    (fun p ->
      let w = with_mu p (fun () -> Lock_table.release_all p.table ~tx) in
      woken := w @ !woken)
    t.parts;
  let still_queued other =
    Array.exists
      (fun p -> with_mu p (fun () -> Lock_table.queued p.table ~tx:other))
      t.parts
  in
  List.sort_uniq Int.compare !woken
  |> List.filter (fun other -> not (still_queued other))

let locks_of t ~tx =
  Array.to_list t.parts
  |> List.concat_map (fun p -> with_mu p (fun () -> Lock_table.locks_of p.table ~tx))

let waiting t =
  Array.to_list t.parts
  |> List.concat_map (fun p -> with_mu p (fun () -> Lock_table.waiting p.table))

(* Any partition dirty since its last clean search?  Lock-free: the
   answer only gates whether a search is worth running. *)
let deadlock_check_due t =
  Array.exists
    (fun p -> Atomic.get p.generation <> Atomic.get p.searched)
    t.parts

let find_deadlock t =
  let n = Array.length t.parts in
  (* Capture generations before searching: an edge added concurrently
     (under a partition mutex we are not holding yet) bumps past the
     captured value, so the partition stays dirty for the next call
     rather than being marked clean unseen. *)
  let gens = Array.map (fun p -> Atomic.get p.generation) t.parts in
  let dirty =
    Array.exists
      (fun (p : partition) -> gens.(p.idx) <> Atomic.get p.searched)
      t.parts
  in
  if not dirty then None
  else begin
    (* Local pass: a cycle whose members all wait in one partition has
       all its edges there (a blocked transaction queues at exactly one
       granule), so each dirty partition's own table is searched
       alone. *)
    let local =
      Array.fold_left
        (fun acc (p : partition) ->
          match acc with
          | Some _ -> acc
          | None ->
              if gens.(p.idx) <> Atomic.get p.searched then
                with_mu p (fun () -> Lock_table.find_deadlock p.table)
              else None)
        None t.parts
    in
    match local with
    | Some _ -> local
    | None ->
        (* Merged pass, only when waiters sit in 2+ partitions: every
           member of a cross-partition cycle is blocked, each queued in
           some partition, and they cannot all be queued in one (then
           the cycle would be local), so the trigger cannot miss. *)
        let waiter_parts =
          Array.fold_left
            (fun acc p ->
              if with_mu p (fun () -> Lock_table.has_waiters p.table) then
                acc + 1
              else acc)
            0 t.parts
        in
        let merged =
          if waiter_parts >= 2 then begin
            Obs.incr t.merged_searches;
            (* The one sanctioned exception to "at most one partition
               mutex": all of them, strictly ascending, inside the
               declared lockdep region — any other multi-hold or any
               descending step is a merged-search-protocol finding. *)
            Omutex.in_region "merged-search" (fun () ->
                for i = 0 to n - 1 do
                  Omutex.lock t.parts.(i).mu
                done;
                Fun.protect
                  ~finally:(fun () ->
                    for i = n - 1 downto 0 do
                      Omutex.unlock t.parts.(i).mu
                    done)
                  (fun () ->
                    Lock_table.find_deadlock_over
                      (Array.to_list (Array.map (fun p -> p.table) t.parts))))
          end
          else None
        in
        (match merged with
        | Some _ -> ()
        | None ->
            (* Clean through the captured generations only: edges that
               raced in stay dirty. *)
            Array.iter
              (fun (p : partition) -> Atomic.set p.searched gens.(p.idx))
              t.parts);
        merged
  end

let stats t = Lock_table.stats (table0 t)
let reset_stats t = Lock_table.reset_stats (table0 t)
