lib/versions/version_manager.ml: Core_error Database Format Instance List Object_manager Oid Option Orion_core Orion_schema Traversal Value
