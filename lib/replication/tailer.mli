(** The primary side of WAL shipping: tail the log, batch sealed
    frames per subscriber, track acknowledgement progress.

    One tailer serves every replica of a primary.  A subscriber is a
    cursor pair [(sent, acked)] into the log's byte offsets (the
    stream's LSNs): {!pump} advances [sent] by whole durable frames —
    verbatim bytes, so the receiver's log mirrors the primary's
    byte-for-byte — and {!ack} advances [acked] from the replica's
    [Repl_ack]s, feeding the lag gauges ([repl.lag_bytes],
    [repl.lag_records], worst replica; plus per-replica
    [repl.lag_bytes{replica=N}] cells) and the ack-RTT histogram
    ([repl.ack_seconds]).

    Thread-safety: all operations take an internal mutex, so shard
    domains serving different replica sessions can share one tailer. *)

type t

val create : Orion_wal.Wal.t -> t
(** Tail this log (the primary's, attached with
    [~truncate_on_checkpoint:false] so offsets stay valid), and
    register the replication instruments. *)

val subscribe : t -> from_lsn:int -> (int * int, string) result
(** [Ok (id, durable_lsn)], or [Error reason] when [from_lsn] is
    negative or past the durable point. *)

val unsubscribe : t -> int -> unit
(** Idempotent; the subscriber's gauges read 0 afterwards. *)

val ack : t -> int -> lsn:int -> unit
(** The replica reported [lsn] durable: advance [acked], observe an
    ack RTT for every in-flight batch this covers. *)

type pumped =
  | Frames of { lsn : int; data : bytes }
      (** whole WAL frames starting at byte offset [lsn] *)
  | Heartbeat of int  (** stream idle at this LSN (paced, ~1/s) *)
  | Idle

val pump : ?max_bytes:int -> t -> int -> pumped
(** One scheduling quantum for subscriber [id]: the next batch of
    durable frames if any (default budget 1 MiB, always at least one
    frame), else a heartbeat when one is due.  Unknown subscribers
    pump [Idle].  Called from the owning session's shard tick. *)

val replica_count : t -> int
