(* The network server, as of the multicore refactor a thin supervisor:
   it binds the listener, builds the shared transactional service and
   the shard reactors, and runs them — on one domain the single shard
   owns the listener and this module just delegates; on several, each
   shard runs on its own domain and the supervisor keeps the acceptor
   loop, dealing connections out to shards by session id. *)

module Obs = Orion_obs.Metrics

type addr = Orion_protocol.Addr.t = Tcp of string * int | Unix_path of string

let pp_addr = Orion_protocol.Addr.pp
let parse_addr = Orion_protocol.Addr.parse

type config = Shard.config = {
  max_sessions : int;
  queue_limit : int;
  idle_timeout : float option;
  lock_timeout : float option;
  metrics_interval : float option;
  domains : int;
  group_commit_window : float option;
  lock_partitions : int;
}

let default_config = Shard.default_config

type stats = {
  accepted : int;
  rejected : int;
  requests : int;
  parks_total : int;
  parked : int;
  deadlock_victims : int;
  lock_timeouts : int;
  idle_closes : int;
}

type t = {
  config : config;
  svc : Tx_service.t;
  shards : Shard.t array;
  listen_fd : Unix.file_descr;
  bound : addr;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
}

let listen_on addr =
  match addr with
  | Tcp _ ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Orion_protocol.Addr.to_sockaddr addr);
      Unix.listen fd 64;
      let bound =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (a, p) -> Tcp (Unix.string_of_inet_addr a, p)
        | Unix.ADDR_UNIX p -> Unix_path p
      in
      (fd, bound)
  | Unix_path path ->
      (* A leftover socket file from a dead server would make bind fail;
         connecting distinguishes live from stale. *)
      if Sys.file_exists path then begin
        let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        let alive =
          try
            Unix.connect probe (Unix.ADDR_UNIX path);
            true
          with Unix.Unix_error _ -> false
        in
        Unix.close probe;
        if alive then
          raise (Unix.Unix_error (Unix.EADDRINUSE, "bind", path))
        else Sys.remove path
      end;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      (fd, Unix_path path)

let session_count t =
  Array.fold_left (fun n sh -> n + Shard.session_count sh) 0 t.shards

let parked_count t =
  Array.fold_left (fun n sh -> n + Shard.parked_count sh) 0 t.shards

let create ?(config = default_config) ?wal ?repl env addr =
  let config = { config with domains = max 1 config.domains } in
  (* 0 = auto: one lock partition per reactor shard, so the partition
     count scales with the parallelism that contends on them. *)
  let config =
    {
      config with
      lock_partitions =
        (if config.lock_partitions <= 0 then config.domains
         else config.lock_partitions);
    }
  in
  let listen_fd, bound = listen_on addr in
  let stop_r, stop_w = Unix.pipe () in
  Unix.set_nonblock stop_r;
  let svc =
    Tx_service.create ?wal ?group_commit_window:config.group_commit_window ?repl
      ~lock_partitions:config.lock_partitions env
  in
  let shards =
    Array.init config.domains (fun idx ->
        (* With one domain the shard owns the listener (no acceptor
           handoff, no extra wakeups: the classic single-threaded
           reactor, byte-for-byte).  With several, the supervisor's
           acceptor keeps it. *)
        if config.domains = 1 then
          Shard.create ~idx ~config ~svc ~listen:listen_fd ~owned_addr:bound ()
        else Shard.create ~idx ~config ~svc ())
  in
  Tx_service.set_posters svc (Array.map Shard.enqueue shards);
  let total () =
    Array.fold_left (fun n sh -> n + Shard.session_count sh) 0 shards
  in
  Array.iter (fun sh -> Shard.set_total_sessions sh total) shards;
  Obs.gauge "server.sessions" total;
  Obs.gauge "server.parked" (fun () ->
      Array.fold_left (fun n sh -> n + Shard.parked_count sh) 0 shards);
  (* No log attached: register zeroed WAL counters so the wire snapshot
     always covers the WAL subsystem (matching Database.stats, which
     reports zeros without a source). *)
  if Option.is_none wal then begin
    List.iter
      (fun name -> ignore (Obs.counter name : Obs.counter))
      [ "wal.appends"; "wal.bytes"; "wal.syncs"; "wal.truncations" ];
    List.iter
      (fun name -> ignore (Obs.histogram name : Obs.histogram))
      [ "wal.append_seconds"; "wal.sync_seconds" ]
  end;
  (* Likewise for the group-commit instruments when batching is off. *)
  if svc.Tx_service.gc = None then begin
    List.iter
      (fun name -> ignore (Obs.counter name : Obs.counter))
      [
        "wal.group_commit.batches";
        "wal.group_commit.batched_txs";
        "wal.group_commit.solo_txs";
      ];
    ignore (Obs.histogram "wal.group_commit.batch_size" : Obs.histogram)
  end;
  { config; svc; shards; listen_fd; bound; stop_r; stop_w }

let address t = t.bound
let service t = t.svc

let role t =
  match t.svc.Tx_service.repl with
  | Tx_service.Standalone -> `Standalone
  | Tx_service.Primary _ -> `Primary
  | Tx_service.Replica_of _ -> `Replica

let stats t =
  let svc = t.svc in
  {
    accepted = Obs.counter_value svc.Tx_service.accepted;
    rejected = Obs.counter_value svc.Tx_service.rejected;
    requests = Obs.counter_value svc.Tx_service.requests;
    parks_total = Obs.counter_value svc.Tx_service.parks;
    parked = parked_count t;
    deadlock_victims = Obs.counter_value svc.Tx_service.deadlock_victims;
    lock_timeouts = Obs.counter_value svc.Tx_service.lock_timeouts;
    idle_closes = Obs.counter_value svc.Tx_service.idle_closes;
  }

(* [stop]/[kill] only write pipe bytes (to the acceptor and to every
   shard's wake pipe), so both are safe to call from a signal handler —
   and from any domain. *)

let signal t byte =
  try ignore (Unix.write t.stop_w (Bytes.make 1 byte) 0 1 : int)
  with Unix.Unix_error _ -> ()

let stop t =
  signal t 'G';
  Array.iter Shard.request_stop t.shards

let kill t =
  signal t 'K';
  Array.iter Shard.request_kill t.shards

(* The acceptor loop (domains > 1): accept, pick the shard by session
   id, hand the connection over.  Admission control runs here against
   the shard-count sum; the target shard is charged at accept time so a
   burst cannot over-admit through the handoff window. *)

let accept_one t =
  match Unix.accept t.listen_fd with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    -> ()
  | fd, _peer ->
      Unix.set_nonblock fd;
      if session_count t >= t.config.max_sessions then
        Shard.refuse_full fd ~max_sessions:t.config.max_sessions
          ~rejected:t.svc.Tx_service.rejected
      else begin
        Obs.incr t.svc.Tx_service.accepted;
        let sid = Tx_service.fresh_sid t.svc in
        let shard = t.shards.(sid mod Array.length t.shards) in
        Shard.note_incoming shard;
        Shard.enqueue shard (Tx_service.New_session { sid; fd })
      end

let acceptor_loop t =
  let killed = ref false in
  let finished = ref false in
  let b = Bytes.create 16 in
  while not !finished do
    match Unix.select [ t.stop_r; t.listen_fd ] [] [] 0.5 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
        if List.mem t.stop_r readable then begin
          let rec drain () =
            match Unix.read t.stop_r b 0 16 with
            | exception
                Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
              -> ()
            | 0 -> ()
            | n ->
                for i = 0 to n - 1 do
                  if Bytes.get b i = 'K' then killed := true
                done;
                drain ()
          in
          drain ();
          finished := true
        end;
        if (not !finished) && List.mem t.listen_fd readable then accept_one t
  done;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (* A graceful exit leaves no stale socket file; a [kill] does, like a
     real crash would. *)
  if not !killed then
    match t.bound with
    | Unix_path path -> ( try Sys.remove path with Sys_error _ -> ())
    | Tcp _ -> ()

let run t =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  if Array.length t.shards = 1 then Shard.run t.shards.(0)
  else begin
    let domains =
      Array.map (fun sh -> Domain.spawn (fun () -> Shard.run sh)) t.shards
    in
    (* The shards got their stop/kill bytes directly; the acceptor loop
       returns when it sees its own. *)
    acceptor_loop t;
    Array.iter Domain.join domains
  end;
  (* Reactors are quiet: settle the group committer.  A graceful stop
     flushes any still-pending batch (their sessions are gone, but
     submitted commits are past the point of no return and must reach
     the log); a kill abandons it, like the crash it simulates. *)
  Tx_service.shutdown_committer
    ~killed:(Array.exists Shard.killed t.shards)
    t.svc
