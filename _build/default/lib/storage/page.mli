(** Slotted pages.

    A page image is a byte buffer with a 4-byte header
    ([nslots:u16], [free_off:u16]), records growing from the header
    upward and a slot directory growing from the end downward.  Each
    directory entry is 4 bytes ([off:u16], [len:u16]); a dead slot is
    marked with [len = 0xffff] and may be reused by later inserts.
    Records are never moved within a page, so slot numbers are stable
    identifiers for the lifetime of a record. *)

type t
(** A mutable view over a page image. *)

val wrap : bytes -> t
(** View an existing image (e.g. one fetched from {!Disk}). *)

val init : bytes -> t
(** Format a fresh image as an empty slotted page. *)

val image : t -> bytes
(** The underlying buffer (shared, not copied). *)

val slot_count : t -> int
(** Number of directory entries, live and dead. *)

val live_slots : t -> int list
(** Slot numbers of live records, ascending. *)

val free_space : t -> int
(** Bytes available for one more record (directory growth accounted). *)

val insert : t -> bytes -> int option
(** [insert page record] places [record] and returns its slot, or
    [None] when the page cannot hold it. *)

val read_slot : t -> int -> bytes option
(** [None] when the slot is dead or out of range. *)

val delete_slot : t -> int -> unit
(** Deleting a dead slot is a no-op. *)

val update_slot : t -> int -> bytes -> bool
(** In-place update; succeeds only when the new record is no longer
    than the space originally allocated to the slot. *)
