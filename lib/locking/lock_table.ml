open Orion_core
module Obs = Orion_obs.Metrics

type granule = G_class of string | G_instance of Oid.t

let pp_granule ppf = function
  | G_class c -> Format.fprintf ppf "class %s" c
  | G_instance oid -> Format.fprintf ppf "instance %a" Oid.pp oid

type tx_id = int

type entry = {
  mutable granted : (tx_id * Lock_mode.t) list;
  mutable queue : (tx_id * Lock_mode.t) list;  (* FIFO, head first *)
}

(* The table's instruments, separable from the table itself: when the
   lock space is partitioned (see {!Lock_partitions}) every slice feeds
   the same counters — the registry replaces on name collision, so N
   tables each registering "lock.acquisitions" would leave only the
   last one visible.  Racing increments from two partitions can at
   worst lose a count, never crash (the registry's stated policy). *)
type instruments = {
  acquisitions : Obs.counter;
  blocks : Obs.counter;
  wakeups : Obs.counter;
  upgrades : Obs.counter;
  class_blocks : (string, Obs.counter) Hashtbl.t;
}

let make_instruments () =
  {
    acquisitions = Obs.counter "lock.acquisitions";
    blocks = Obs.counter "lock.blocks";
    wakeups = Obs.counter "lock.wakeups";
    upgrades = Obs.counter "lock.upgrades";
    class_blocks = Hashtbl.create 16;
  }

type t = {
  compat : Lock_mode.t -> Lock_mode.t -> bool;
  entries : (granule, entry) Hashtbl.t;
  ins : instruments;
  mutable classify : Oid.t -> string option;
}

type stats = { acquisitions : int; blocks : int; wakeups : int }

let create ?(compat = Lock_mode.compat) ?instruments () =
  let ins =
    match instruments with Some ins -> ins | None -> make_instruments ()
  in
  { compat; entries = Hashtbl.create 64; ins; classify = (fun _ -> None) }

let set_classifier t f = t.classify <- f

let granule_class t = function
  | G_class c -> Some c
  | G_instance oid -> t.classify oid

(* One labeled counter per granule class, created on first block —
   contention is rare relative to acquisition, so the hot grant path
   never touches the table. *)
let count_class_block t granule =
  match granule_class t granule with
  | None -> ()
  | Some cls ->
      let c =
        match Hashtbl.find_opt t.ins.class_blocks cls with
        | Some c -> c
        | None ->
            let c = Obs.counter (Obs.labeled "lock.blocks" ("class", cls)) in
            Hashtbl.replace t.ins.class_blocks cls c;
            c
      in
      Obs.incr c

let entry t granule =
  match Hashtbl.find_opt t.entries granule with
  | Some e -> e
  | None ->
      let e = { granted = []; queue = [] } in
      Hashtbl.replace t.entries granule e;
      e

let compatible_with_others t entry ~tx mode =
  List.for_all
    (fun (holder, held) -> holder = tx || t.compat mode held)
    entry.granted

let covered entry ~tx mode =
  List.exists
    (fun (holder, held) ->
      holder = tx
      && (held = mode
         || match Lock_mode.supremum held mode with
            | Some sup -> sup = held
            | None -> false))
    entry.granted

let holds t ~tx granule mode = covered (entry t granule) ~tx mode

(* Add [mode] to the transaction's granted modes, coalescing with an
   existing grant when the supremum exists: a holder upgrading must
   not stack a second (tx, mode) pair — [holders]/[locks_of] would
   report duplicates, [covered] would miss coverage two stacked modes
   jointly imply (IX + S held is SIX, but neither entry alone covers a
   SIX request), and grant lists would grow without bound in long
   transactions.  Modes from incomparable families (no supremum, e.g.
   IS and ISO) keep separate entries: no single mode expresses their
   union. *)
let grant t e ~tx mode =
  let rec coalesce = function
    | [] -> None
    | ((holder, held) as kept) :: rest ->
        if holder = tx then
          match Lock_mode.supremum held mode with
          | Some sup -> Some ((tx, sup) :: rest)
          | None -> Option.map (fun rest -> kept :: rest) (coalesce rest)
        else Option.map (fun rest -> kept :: rest) (coalesce rest)
  in
  match coalesce e.granted with
  | Some granted ->
      Obs.incr t.ins.upgrades;
      e.granted <- granted
  | None -> e.granted <- e.granted @ [ (tx, mode) ]

(* A re-polled request from a transaction already queued at this
   granule must not enqueue a second entry — it re-points the queued
   entry at the supremum of the old and new modes (escalation may have
   strengthened the re-derived lock set, e.g. S -> X).  Duplicate
   entries would hide waits-for edges between a transaction's own two
   entries from [blocked_on]'s ahead-scan, hiding deadlocks.  When the
   supremum does not exist (incomparable families) the stronger-queued
   convention cannot apply; the new mode replaces the old, and the
   re-poll that eventually wins re-derives the full set anyway. *)
let requeue e ~tx mode =
  e.queue <-
    List.map
      (fun ((waiter, old) as kept) ->
        if waiter = tx then
          match Lock_mode.supremum old mode with
          | Some sup -> (tx, sup)
          | None -> (tx, mode)
        else kept)
      e.queue

let acquire t ~tx granule mode =
  let e = entry t granule in
  (* Covered first, queue-dedup second: a transaction can be a holder
     AND queued at one granule (waiting on an upgrade, or on the second
     of two modes a self-referential composite derives for one class
     granule).  Its re-poll of a mode it already holds must grant
     without touching the queued entry — routing it through [requeue]
     would overwrite the pending (possibly incomparable) mode with the
     held one and lose the stronger request. *)
  if covered e ~tx mode then begin
    Obs.incr t.ins.acquisitions;
    `Granted
  end
  else if List.exists (fun (waiter, _) -> waiter = tx) e.queue then begin
    requeue e ~tx mode;
    `Blocked
  end
  else begin
    Obs.incr t.ins.acquisitions;
    if
      (* FIFO fairness: a request must also wait behind queued requests
         of other transactions unless it is already a holder
         upgrading. *)
      compatible_with_others t e ~tx mode
      && (e.queue = [] || List.mem_assoc tx e.granted)
    then begin
      grant t e ~tx mode;
      `Granted
    end
    else begin
      Obs.incr t.ins.blocks;
      count_class_block t granule;
      e.queue <- e.queue @ [ (tx, mode) ];
      `Blocked
    end
  end

let try_acquire t ~tx granule mode =
  let e = entry t granule in
  if covered e ~tx mode then begin
    (* Account the covered path like [acquire] does, so callers that
       mix the two entry points (opportunistic escalation) see
       consistent acquisition counts. *)
    Obs.incr t.ins.acquisitions;
    true
  end
  else if
    compatible_with_others t e ~tx mode
    && (e.queue = [] || List.mem_assoc tx e.granted)
  then begin
    Obs.incr t.ins.acquisitions;
    grant t e ~tx mode;
    true
  end
  else false

let holders t granule = (entry t granule).granted

let locks_of t ~tx =
  Hashtbl.fold
    (fun granule e acc ->
      List.fold_left
        (fun acc (holder, mode) -> if holder = tx then (granule, mode) :: acc else acc)
        acc e.granted)
    t.entries []

let waiting t =
  Hashtbl.fold
    (fun granule e acc ->
      List.fold_left (fun acc (tx, mode) -> (tx, granule, mode) :: acc) acc e.queue)
    t.entries []

let queued t ~tx =
  Hashtbl.fold
    (fun _ e acc ->
      acc || List.exists (fun (waiter, _) -> waiter = tx) e.queue)
    t.entries false

let has_waiters t =
  Hashtbl.fold (fun _ e acc -> acc || e.queue <> []) t.entries false

(* Promote queued requests that have become compatible, FIFO. *)
let promote t e =
  let woken = ref [] in
  let rec go queue =
    match queue with
    | [] -> []
    | (tx, mode) :: rest ->
        if compatible_with_others t e ~tx mode then begin
          grant t e ~tx mode;
          Obs.incr t.ins.wakeups;
          woken := tx :: !woken;
          go rest
        end
        else (tx, mode) :: rest
        (* strict FIFO: stop at the first request that must keep waiting *)
  in
  e.queue <- go e.queue;
  !woken

let release_all t ~tx =
  let woken = ref [] in
  Hashtbl.iter
    (fun _ e ->
      e.granted <- List.filter (fun (holder, _) -> holder <> tx) e.granted;
      e.queue <- List.filter (fun (waiter, _) -> waiter <> tx) e.queue)
    t.entries;
  Hashtbl.iter (fun _ e -> woken := promote t e @ !woken) t.entries;
  (* Fully unblocked = no queued request left anywhere. *)
  let still_queued = List.map (fun (tx, _, _) -> tx) (waiting t) in
  List.sort_uniq Int.compare
    (List.filter (fun tx -> not (List.mem tx still_queued)) !woken)

let blocked_on t ~tx =
  Hashtbl.fold
    (fun _ e acc ->
      if List.exists (fun (waiter, _) -> waiter = tx) e.queue then begin
        (* Waits-for edges: holders whose mode is incompatible with any
           of the transaction's queued modes, plus — because grants are
           FIFO — every distinct transaction queued ahead of any of its
           entries.  The scan tracks who is ahead as it walks, so a
           transaction queued twice (possible across incomparable mode
           families) contributes the waiters between its entries too. *)
        let rec ahead_scan ahead acc = function
          | [] -> acc
          | (waiter, _) :: rest when waiter = tx ->
              ahead_scan ahead (ahead @ acc) rest
          | (waiter, _) :: rest -> ahead_scan (waiter :: ahead) acc rest
        in
        let acc = ahead_scan [] acc e.queue in
        List.fold_left
          (fun acc (waiter, mode) ->
            if waiter = tx then
              List.fold_left
                (fun acc (holder, held) ->
                  if holder <> tx && not (t.compat mode held) then holder :: acc
                  else acc)
                acc e.granted
            else acc)
          acc e.queue
      end
      else acc)
    t.entries []
  |> List.filter (fun other -> other <> tx)
  |> List.sort_uniq Int.compare

(* Cycle search over the union of several tables' waits-for graphs —
   the merged search of a partitioned lock space (each table is one
   partition's slice; a cross-partition cycle's edges are split among
   them and no single table can see it).  With one table this is
   exactly the classic whole-table search. *)
let find_deadlock_over tables =
  let blocked_on_all tx =
    List.sort_uniq Int.compare
      (List.concat_map (fun t -> blocked_on t ~tx) tables)
  in
  let txs =
    List.sort_uniq Int.compare
      (List.concat_map
         (fun t -> List.map (fun (tx, _, _) -> tx) (waiting t))
         tables)
  in
  (* Transactions fully explored without finding a cycle.  The set is
     shared across the whole search, not threaded per branch: a node
     from which no cycle is reachable stays cycle-free however it is
     reached again, so each node is expanded once and the search is
     linear in the waits-for graph.  (Per-branch visited sets made this
     exponential on the dense graphs a convoy of waiters produces —
     waiter i blocked on the holder and every waiter ahead of it.) *)
  let cleared = Hashtbl.create 16 in
  let rec dfs path tx =
    if List.mem tx path then
      (* Cycle: the suffix of the path from the first occurrence. *)
      let rec suffix = function
        | [] -> []
        | x :: rest -> if x = tx then x :: rest else suffix rest
      in
      Some (suffix (List.rev path))
    else if Hashtbl.mem cleared tx then None
    else
      let result =
        List.fold_left
          (fun acc next ->
            match acc with Some _ -> acc | None -> dfs (tx :: path) next)
          None (blocked_on_all tx)
      in
      (match result with None -> Hashtbl.replace cleared tx () | Some _ -> ());
      result
  in
  List.fold_left
    (fun acc tx -> match acc with Some _ -> acc | None -> dfs [] tx)
    None txs

let find_deadlock t = find_deadlock_over [ t ]

let stats (t : t) =
  {
    acquisitions = Obs.counter_value t.ins.acquisitions;
    blocks = Obs.counter_value t.ins.blocks;
    wakeups = Obs.counter_value t.ins.wakeups;
  }

let reset_stats (t : t) =
  Obs.reset_counter t.ins.acquisitions;
  Obs.reset_counter t.ins.blocks;
  Obs.reset_counter t.ins.wakeups;
  Obs.reset_counter t.ins.upgrades
