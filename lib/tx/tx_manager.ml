open Orion_core
module Lock_table = Orion_locking.Lock_table
module Lock_partitions = Orion_locking.Lock_partitions
module Lock_mode = Orion_locking.Lock_mode
module Protocol = Orion_locking.Protocol
module Obs = Orion_obs.Metrics
module Version_store = Orion_mvcc.Version_store
module Snapshot_read = Orion_mvcc.Snapshot_read

type state = Active | Blocked | Committing | Committed | Aborted

type tx = {
  id : int;
  mutable tx_state : state;
  snapshot : Snapshot.t;
  mutable created : Oid.t list;
  instance_locks : (string * Protocol.access, unit Oid.Tbl.t) Hashtbl.t;
      (* distinct instances locked per (class, access), for escalation *)
  mutable escalated_classes : (string * Protocol.access) list;
}

type t = {
  db : Database.t;
  parts : Lock_partitions.t;
  txs : (int, tx) Hashtbl.t;
  mutable next_tx : int;
  escalation_threshold : int option;
  mutable wal : Orion_wal.Wal.t option;
  mvcc : Version_store.t;
  escalations : Obs.counter;
  acquire_hist : Obs.histogram;
}

(* A read-only snapshot transaction: no lock-table entries, no undo —
   just a registered view into the version store at its begin clock. *)
type snapshot_tx = { snap_id : int; view : Snapshot_read.t }

let create ?compat ?escalation_threshold ?wal ?(lock_partitions = 1) db =
  let parts = Lock_partitions.create ?compat ~n:lock_partitions () in
  Lock_partitions.set_classifier parts (fun oid ->
      Option.map (fun i -> i.Instance.cls) (Database.find db oid));
  (* Partition keying reuses the storage-segment clustering computed at
     [make] time: a class granule follows its segment (composite
     hierarchies are co-segmented, so a root's class-lattice path stays
     together), an instance granule hashes its oid — the composite
     protocol only locks the root's instance granule, so that keys it
     by composite root.  Both inputs are immutable per granule. *)
  Lock_partitions.set_keyer parts (function
    | Lock_table.G_class cls -> (
        match
          Orion_schema.Schema.segment_of_class (Database.schema db) cls
        with
        | segment -> segment
        | exception Orion_schema.Schema.Error _ -> Hashtbl.hash cls)
    | Lock_table.G_instance oid -> Oid.hash oid);
  {
    db;
    parts;
    txs = Hashtbl.create 16;
    next_tx = 0;
    escalation_threshold;
    wal;
    mvcc = Version_store.create db;
    escalations = Obs.counter "tx.escalations";
    acquire_hist = Obs.histogram "lock.acquire_seconds";
  }

let database t = t.db
let set_wal t wal = t.wal <- Some wal

(* Partition 0's table: with one partition (the default) this is the
   whole lock space, and its instruments are shared across partitions
   either way, so [Lock_table.stats] on it reads the global counters. *)
let lock_table t = Lock_partitions.table0 t.parts
let lock_partitions t = t.parts
let version_store t = t.mvcc

(* Runnable transactions: [Active] only — neither parked on a lock nor
   submitted to the group committer.  The committer's eager heuristic
   keys off this (a blocked transaction cannot join a commit batch). *)
let active_count t =
  Hashtbl.fold
    (fun _ tx n -> if tx.tx_state = Active then n + 1 else n)
    t.txs 0

let begin_tx t =
  let id = t.next_tx in
  t.next_tx <- id + 1;
  let tx =
    {
      id;
      tx_state = Active;
      snapshot = Snapshot.take t.db [];
      created = [];
      instance_locks = Hashtbl.create 8;
      escalated_classes = [];
    }
  in
  Hashtbl.replace t.txs id tx;
  tx

let tx_id tx = tx.id
let state tx = tx.tx_state

(* Locking ------------------------------------------------------------------ *)

let acquire_set t tx locks =
  match
    Obs.Span.time ~histogram:t.acquire_hist "lock.acquire" (fun () ->
        Lock_partitions.acquire_set t.parts ~tx:tx.id locks)
  with
  | `Granted ->
      tx.tx_state <- Active;
      `Granted
  | `Blocked _ ->
      tx.tx_state <- Blocked;
      `Blocked

let lock_composite t tx ~root access =
  acquire_set t tx (Protocol.composite_object_locks t.db ~root access)

(* Escalation: at the threshold, trade n instance locks for one
   whole-class lock (classic multi-granularity escalation; §7's
   protocols make the class granule available for exactly this). *)
let escalation_mode access =
  match access with Protocol.Read_ -> Lock_mode.S | Protocol.Update -> Lock_mode.X

let covers_access held wanted =
  match (held, wanted) with
  | _, Protocol.Read_ -> true
  | Protocol.Update, Protocol.Update -> true
  | Protocol.Read_, Protocol.Update -> false

let lock_instance t tx oid access =
  let cls = Database.class_of t.db oid in
  if
    List.exists
      (fun (c, held) -> String.equal c cls && covers_access held access)
      tx.escalated_classes
  then begin
    tx.tx_state <- Active;
    `Granted
  end
  else begin
    let result = acquire_set t tx (Protocol.instance_locks t.db oid access) in
    (match (result, t.escalation_threshold) with
    | `Granted, Some threshold ->
        let key = (cls, access) in
        (* Count distinct instances, not acquisitions: re-locking one
           hot object must not creep toward the threshold, or a
           whole-class lock replaces a single-instance lock and
           strangles unrelated readers of the class. *)
        let oids =
          match Hashtbl.find_opt tx.instance_locks key with
          | Some oids -> oids
          | None ->
              let oids = Oid.Tbl.create 8 in
              Hashtbl.replace tx.instance_locks key oids;
              oids
        in
        Oid.Tbl.replace oids oid ();
        if
          Oid.Tbl.length oids >= threshold
          && Lock_partitions.try_acquire t.parts ~tx:tx.id
               (Lock_table.G_class cls) (escalation_mode access)
        then begin
          tx.escalated_classes <- key :: tx.escalated_classes;
          Obs.incr t.escalations
        end
    | (`Granted | `Blocked), _ -> ());
    result
  end

let escalated _t tx =
  List.sort_uniq String.compare (List.map fst tx.escalated_classes)

(* Undo capture -------------------------------------------------------------- *)

(* Close a touched set over version bookkeeping: a version instance
   drags in its generic and every sibling version (a cascade may delete
   the whole versionable object). *)
let with_generics db oids =
  let extra =
    List.concat_map
      (fun oid ->
        match Database.find db oid with
        | None -> []
        | Some inst -> (
            let family goid =
              match Database.find db goid with
              | Some g -> (
                  match Instance.generic_info g with
                  | Some gi -> goid :: gi.versions
                  | None -> [ goid ])
              | None -> []
            in
            match inst.Instance.kind with
            | Instance.Version vi -> family vi.generic
            | Instance.Generic _ -> family oid
            | Instance.Plain -> []))
      oids
  in
  List.sort_uniq Oid.compare (oids @ extra)

(* Extend the undo snapshot and, for each object captured for the first
   time by this transaction, seed the version store's chain with the
   committed pre-image (under strict 2PL the first capture happens
   before this transaction's writes, and no other writer holds the
   object).  Pinned until [finish] settles the transaction. *)
let capture t tx oids =
  let fresh = Snapshot.extend tx.snapshot t.db (with_generics t.db oids) in
  List.iter
    (fun (oid, (c : Snapshot.capture)) ->
      Version_store.note_base ~tx:tx.id t.mvcc oid
        (Some { Version_store.inst = c.image; rrefs = c.rrefs }))
    fresh

let value_refs_of db oid attr =
  match Database.find db oid with
  | None -> []
  | Some inst -> (
      match Instance.attr inst attr with Some v -> Value.refs v | None -> [])

(* Updates -------------------------------------------------------------------- *)

let create_object t tx ~cls ?(parents = []) ?(attrs = []) () =
  capture t tx
    (List.map fst parents @ List.concat_map (fun (_, v) -> Value.refs v) attrs);
  let oid = Object_manager.create t.db ~cls ~parents ~attrs () in
  (* A versionable create also made a generic instance; track both. *)
  let created =
    match Database.find t.db oid with
    | Some inst -> (
        match Instance.version_info inst with
        | Some vi -> [ oid; vi.generic ]
        | None -> [ oid ])
    | None -> [ oid ]
  in
  tx.created <- created @ tx.created;
  (* Creations chain from absence: a snapshot older than the commit
     must not see the object (nor the uncommitted live one). *)
  List.iter (fun o -> Version_store.note_base ~tx:tx.id t.mvcc o None) created;
  oid

let write_attr t tx oid attr value =
  capture t tx ((oid :: value_refs_of t.db oid attr) @ Value.refs value);
  Object_manager.write_attr t.db oid attr value

let make_component t tx ~parent ~attr ~child =
  capture t tx [ parent; child ];
  Object_manager.make_component t.db ~parent ~attr ~child

let remove_component t tx ~parent ~attr ~child =
  (* Removal may cascade a deletion into the child's components. *)
  capture t tx
    ((parent :: child :: Traversal.components_of t.db child)
    @ Traversal.parents_of t.db child);
  Object_manager.remove_component t.db ~parent ~attr ~child

let delete_object t tx oid =
  let comps = oid :: Traversal.components_of t.db oid in
  let touched = comps @ List.concat_map (fun o -> Traversal.parents_of t.db o) comps in
  capture t tx touched;
  Object_manager.delete t.db oid

(* Completion ------------------------------------------------------------------ *)

let finish t tx state =
  tx.tx_state <- state;
  (* Unpin the version chains this transaction held open (its commit,
     if any, already published — the committer publishes before it
     notifies, and the direct path publishes above). *)
  Version_store.settle t.mvcc ~tx:tx.id;
  (* Releasing also dequeues any lock request the transaction still has
     queued, so finishing a [Blocked] transaction (deadlock victim,
     wire-level cancel or lock timeout) leaves no orphan waiter to be
     granted later. *)
  let unblocked = Lock_partitions.release_all t.parts ~tx:tx.id in
  List.iter
    (fun id ->
      match Hashtbl.find_opt t.txs id with
      | Some other when other.tx_state = Blocked -> other.tx_state <- Active
      | Some _ | None -> ())
    unblocked;
  (* A finished transaction can never be woken again; dropping it keeps
     the manager's footprint flat across a long-running server. *)
  Hashtbl.remove t.txs tx.id;
  unblocked

let validate_commitable tx =
  match tx.tx_state with
  | Active -> ()
  | Blocked -> invalid_arg "Tx_manager.commit: transaction is blocked on a lock"
  | Committing ->
      invalid_arg "Tx_manager.commit: commit already submitted"
  | Committed | Aborted ->
      invalid_arg "Tx_manager.commit: transaction already finished"

let commit t tx =
  validate_commitable tx;
  (* Durability point: after-images of everything this transaction may
     have touched (its undo-snapshot coverage plus its creations) reach
     the log, sealed by a commit record, before any lock is released.
     No log attached — in-memory semantics, commit is lock release.
     Either way the commit claims a fresh clock (visibility point for
     snapshot reads) and publishes its after-images to the version
     store before locks drop. *)
  let touched =
    List.sort_uniq Oid.compare (Snapshot.captured tx.snapshot @ tx.created)
  in
  let clock = Database.tick t.db in
  (match t.wal with
  | Some wal ->
      let records = Orion_wal.Wal.commit_records t.db ~tx:tx.id ~touched in
      let next_oid, _ = Database.counters t.db in
      let cc = Database.current_cc t.db in
      (* The direct path's fsync runs under whatever lock the caller
         holds (the server dispatches commits under the service lock) —
         by design: strict 2PL keeps the locks across the durability
         point.  Declared as a lockdep exemption; group commit exists
         precisely to amortize this. *)
      Orion_util.Omutex.allow_blocking "direct-commit-durability" (fun () ->
          Orion_wal.Wal.log_batch wal ~records
            ~seal:
              (Orion_wal.Wal_record.Commit { tx = tx.id; next_oid; clock; cc }));
      Version_store.publish_records t.mvcc ~clock records
  | None ->
      Version_store.publish t.mvcc ~clock
        (List.map
           (fun oid ->
             match Database.find t.db oid with
             | Some inst ->
                 ( oid,
                   Some
                     {
                       Version_store.inst = Instance.copy inst;
                       rrefs = Database.rrefs t.db oid;
                     } )
             | None -> (oid, None))
           touched));
  finish t tx Committed

(* Group-commit split of [commit]: capture the after-image records now
   (while the workspace still holds this transaction's writes) and park
   the transaction in [Committing] until the batch sync settles.  The
   point of no return for abort: locks stay held (strict 2PL across the
   sync), and only the committer's verdict finishes the transaction. *)
let submit_commit t tx =
  validate_commitable tx;
  let records =
    Orion_wal.Wal.commit_records t.db ~tx:tx.id
      ~touched:(Snapshot.captured tx.snapshot @ tx.created)
  in
  (* Each submission claims its own clock, so batch seals (the max of
     their members') are strictly increasing and a group's records all
     publish at its one seal clock — atomic visibility for snapshots. *)
  let clock = Database.tick t.db in
  let next_oid, _ = Database.counters t.db in
  let cc = Database.current_cc t.db in
  tx.tx_state <- Committing;
  (records, (next_oid, clock, cc))

let complete_commit t tx =
  (match tx.tx_state with
  | Committing -> ()
  | _ -> invalid_arg "Tx_manager.complete_commit: no commit in flight");
  finish t tx Committed

let commit_failed t tx =
  (match tx.tx_state with
  | Committing -> ()
  | _ -> invalid_arg "Tx_manager.commit_failed: no commit in flight");
  (* The log never sealed the batch, so durably the transaction never
     happened — roll the workspace back to match (same order as abort:
     restore before removing creations). *)
  Snapshot.restore tx.snapshot t.db;
  List.iter
    (fun oid -> if Database.exists t.db oid then Database.remove t.db oid)
    tx.created;
  finish t tx Aborted

let abort t tx =
  match tx.tx_state with
  | Committed | Aborted ->
      (* Idempotent: a second abort (say a client cancel racing the
         deadlock detector) must not restore the stale snapshot over
         state other transactions have since committed. *)
      []
  | Committing ->
      (* Past the point of no return: the batch may already be durable.
         The committer's notification decides the outcome; meanwhile
         there is nothing to release. *)
      []
  | Active | Blocked ->
      (* Restore first: an object created by this transaction may have
         been captured by a later operation's snapshot, and restoring it
         after removal would resurrect it. *)
      Snapshot.restore tx.snapshot t.db;
      List.iter
        (fun oid -> if Database.exists t.db oid then Database.remove t.db oid)
        tx.created;
      finish t tx Aborted

let abort_id t id =
  match Hashtbl.find_opt t.txs id with Some tx -> abort t tx | None -> []

(* Incremental: only partitions dirtied by a new wait-for edge are
   searched, and the merged cross-partition search runs only when
   waiters sit in several partitions (see {!Lock_partitions}). *)
let find_deadlock t = Lock_partitions.find_deadlock t.parts
let deadlock_check_due t = Lock_partitions.deadlock_check_due t.parts

(* Snapshot transactions ------------------------------------------------------ *)

(* Read-only transactions against the version store: no entry in the
   lock table (by construction — nothing below touches [t.table]), no
   undo snapshot, no slot in [t.txs].  The id comes from the shared
   counter so it can never collide with a 2PL transaction's. *)

let begin_snapshot t =
  let id = t.next_tx in
  t.next_tx <- id + 1;
  let clock = Version_store.open_snap t.mvcc ~id in
  { snap_id = id; view = Snapshot_read.make ~store:t.mvcc ~db:t.db ~id ~clock }

let end_snapshot t snap = Version_store.close_snap t.mvcc ~id:snap.snap_id
let snapshot_id snap = snap.snap_id
let snapshot_clock snap = Snapshot_read.clock snap.view
let snapshot_view snap = snap.view
