(** Operation logs for deferred state-independent changes (§4.3).

    The paper keeps, for each class that is the domain of some
    attribute, a log of type changes stamped with a change count (CC);
    every instance carries its own CC and catches up on access.  We use
    one global monotone CC across all logs (equivalent ordering, one
    counter), recorded per domain class. *)

type entry =
  | Set_flags of {
      referencing_cls : string;
      attr : string;
      exclusive : bool;
      dependent : bool;
    }  (** I2/I3/I4: rewrite the X/D flags of matching reverse references *)
  | Drop_rrefs of { referencing_cls : string; attr : string }
      (** I1: the attribute became non-composite; matching reverse
          references disappear *)

type t

val create : unit -> t

val append : t -> domain_cls:string -> entry -> int
(** Record an entry against the domain class; returns the new global CC. *)

val current_cc : t -> int

val pending_for : t -> classes:string list -> since:int -> (int * entry) list
(** Entries newer than [since] recorded against any of [classes]
    (an instance consults its own class and all superclasses), in CC
    order. *)

val entry_count : t -> int
