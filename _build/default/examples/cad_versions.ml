(* Versions of composite objects (§5) on a CAD-flavoured scenario: a
   versionable PCB design whose components are versionable modules.

   Shows: derivation (Figure 1 copy semantics), static vs dynamic
   binding, user and system default versions, the version-derivation
   hierarchy, and the CV-4X deletion cascade.

   Run with: dune exec examples/cad_versions.exe *)

open Orion_core
module A = Orion_schema.Attribute
module D = Orion_schema.Domain
module Schema = Orion_schema.Schema
module VM = Orion_versions.Version_manager

let () =
  let db = Database.create () in
  let schema = Database.schema db in
  let define ?versionable name attrs =
    ignore
      (Schema.define schema ?versionable ~name ~attributes:attrs ()
        : Orion_schema.Class_def.t)
  in
  define ~versionable:true "Module"
    [ A.make ~name:"Id" ~domain:(D.Primitive D.P_string) () ];
  define ~versionable:true "Board"
    [
      A.make ~name:"Name" ~domain:(D.Primitive D.P_string) ();
      (* independent exclusive: the paper's Figure-1 case *)
      A.make ~name:"Cpu" ~domain:(D.Class "Module")
        ~refkind:(A.composite ~exclusive:true ~dependent:false ())
        ();
      A.make ~name:"Probes" ~domain:(D.Class "Module") ~collection:A.Set
        ~refkind:(A.composite ~exclusive:false ~dependent:false ())
        ();
    ];

  (* Creating an instance of a versionable class yields the first
     version instance (its generic instance is implicit). *)
  let cpu_v0 = Object_manager.create db ~cls:"Module" ~attrs:[ ("Id", Value.Str "cpu-a") ] () in
  let probe = Object_manager.create db ~cls:"Module" ~attrs:[ ("Id", Value.Str "probe") ] () in
  let board_v0 =
    Object_manager.create db ~cls:"Board"
      ~attrs:
        [
          ("Name", Value.Str "mainboard");
          ("Cpu", Value.Ref cpu_v0);
          ("Probes", Value.VSet [ Value.Ref probe ]);
        ]
      ()
  in
  Format.printf "board v%d statically bound to cpu %a@."
    (VM.version_no db board_v0) Oid.pp cpu_v0;

  (* Derive a new board version: the exclusive static reference rebinds
     to the cpu's generic instance (dynamic binding, Figure 1.b). *)
  let board_v1 = VM.derive db board_v0 in
  let g_cpu = VM.generic_of db cpu_v0 in
  Format.printf "derived board v%d; Cpu attribute now %s@."
    (VM.version_no db board_v1)
    (Value.to_string (Object_manager.read_attr db board_v1 "Cpu"));
  assert (Value.equal (Object_manager.read_attr db board_v1 "Cpu") (Value.Ref g_cpu));

  (* A new cpu version; the dynamic binding resolves to the default
     version (system default = latest creation). *)
  let cpu_v1 = VM.derive db cpu_v0 in
  Format.printf "cpu now has versions: %a; default resolves to %a@."
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Oid.pp)
    (VM.versions db cpu_v0) Oid.pp
    (VM.default_version db g_cpu);
  assert (Oid.equal (VM.default_version db g_cpu) cpu_v1);

  (* The user pins the default back to v0. *)
  VM.set_default_version db g_cpu (Some cpu_v0);
  Format.printf "after set-default: default resolves to %a@." Oid.pp
    (VM.default_version db g_cpu);

  (* Static binding of the new board to the new cpu version (Figure 2:
     different versions reference different versions). *)
  VM.bind_statically db ~holder:board_v1 ~attr:"Cpu" ~version:cpu_v1;
  Format.printf "board v1 statically bound to cpu v%d@." (VM.version_no db cpu_v1);

  (* The derivation hierarchy of the board. *)
  List.iter
    (fun tree -> Format.printf "derivation tree:@.%a@." VM.pp_tree tree)
    (VM.derivation_tree db board_v0);

  (* components-of resolves dynamic bindings through default versions. *)
  Format.printf "components of board v0: %a@."
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Oid.pp)
    (Traversal.components_of db board_v0);

  (* CV-4X: deleting the last version of the board deletes its generic;
     the cpu survives (independent references). *)
  Object_manager.delete db board_v0;
  Object_manager.delete db board_v1;
  Format.printf "boards deleted; cpu versions still alive: %d@."
    (List.length (VM.versions db cpu_v0));

  Integrity.assert_ok db;
  print_endline "integrity: consistent"
