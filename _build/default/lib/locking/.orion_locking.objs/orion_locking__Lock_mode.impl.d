lib/locking/lock_mode.ml: Format List String
