module W = Orion_storage.Bytes_rw.Writer
module R = Orion_storage.Bytes_rw.Reader

let corrupt msg = raise (R.Corrupt msg)

let rec write_value w = function
  | Value.Null -> W.u8 w 0
  | Value.Int n ->
      W.u8 w 1;
      W.int w n
  | Value.Float f ->
      W.u8 w 2;
      W.float w f
  | Value.Str s ->
      W.u8 w 3;
      W.string w s
  | Value.Bool b ->
      W.u8 w 4;
      W.bool w b
  | Value.Ref oid ->
      W.u8 w 5;
      W.int w (Oid.to_int oid)
  | Value.VSet vs ->
      W.u8 w 6;
      W.int w (List.length vs);
      List.iter (write_value w) vs

let rec read_value r =
  match R.u8 r with
  | 0 -> Value.Null
  | 1 -> Value.Int (R.int r)
  | 2 -> Value.Float (R.float r)
  | 3 -> Value.Str (R.string r)
  | 4 -> Value.Bool (R.bool r)
  | 5 -> Value.Ref (Oid.of_int (R.int r))
  | 6 ->
      let n = R.int r in
      Value.VSet (List.init n (fun _ -> read_value r))
  | tag -> corrupt (Printf.sprintf "bad value tag %d" tag)

let write_rref w (r : Rref.t) =
  W.int w (Oid.to_int r.parent);
  W.string w r.attr;
  W.bool w r.exclusive;
  W.bool w r.dependent

let read_rref r : Rref.t =
  let parent = Oid.of_int (R.int r) in
  let attr = R.string r in
  let exclusive = R.bool r in
  let dependent = R.bool r in
  { parent; attr; exclusive; dependent }

let write_gref w (g : Rref.gref) =
  W.int w (Oid.to_int g.g_parent);
  W.string w g.g_attr;
  W.bool w g.g_exclusive;
  W.bool w g.g_dependent;
  W.int w g.count

let read_gref r : Rref.gref =
  let g_parent = Oid.of_int (R.int r) in
  let g_attr = R.string r in
  let g_exclusive = R.bool r in
  let g_dependent = R.bool r in
  let count = R.int r in
  { g_parent; g_attr; g_exclusive; g_dependent; count }

let write_list w f items =
  W.int w (List.length items);
  List.iter (f w) items

let read_list r f =
  let n = R.int r in
  List.init n (fun _ -> f r)

let encode db (inst : Instance.t) =
  let w = W.create () in
  W.int w (Oid.to_int inst.oid);
  W.string w inst.cls;
  (match inst.kind with
  | Instance.Plain -> W.u8 w 0
  | Instance.Generic gi ->
      W.u8 w 1;
      write_list w (fun w v -> W.int w (Oid.to_int v)) gi.versions;
      (match gi.user_default with
      | None -> W.bool w false
      | Some d ->
          W.bool w true;
          W.int w (Oid.to_int d));
      W.int w gi.next_version_no;
      write_list w write_gref gi.grefs
  | Instance.Version vi ->
      W.u8 w 2;
      W.int w (Oid.to_int vi.generic);
      W.int w vi.version_no;
      (match vi.derived_from with
      | None -> W.bool w false
      | Some d ->
          W.bool w true;
          W.int w (Oid.to_int d));
      W.int w vi.created_at);
  W.int w inst.cc;
  write_list w
    (fun w (name, v) ->
      W.string w name;
      write_value w v)
    inst.attrs;
  (match Database.rref_repr db with
  | Database.Inline -> write_list w write_rref inst.rrefs
  | Database.External -> W.int w 0);
  W.contents w

let decode data =
  let r = R.of_bytes data in
  let oid = Oid.of_int (R.int r) in
  let cls = R.string r in
  let kind =
    match R.u8 r with
    | 0 -> Instance.Plain
    | 1 ->
        let versions = read_list r (fun r -> Oid.of_int (R.int r)) in
        let user_default =
          if R.bool r then Some (Oid.of_int (R.int r)) else None
        in
        let next_version_no = R.int r in
        let grefs = read_list r read_gref in
        Instance.Generic { versions; user_default; next_version_no; grefs }
    | 2 ->
        let generic = Oid.of_int (R.int r) in
        let version_no = R.int r in
        let derived_from = if R.bool r then Some (Oid.of_int (R.int r)) else None in
        let created_at = R.int r in
        Instance.Version { generic; version_no; derived_from; created_at }
    | tag -> corrupt (Printf.sprintf "bad kind tag %d" tag)
  in
  let cc = R.int r in
  let attrs =
    read_list r (fun r ->
        let name = R.string r in
        let v = read_value r in
        (name, v))
  in
  let rrefs = read_list r read_rref in
  { Instance.oid; cls; kind; attrs; rrefs; cc; cluster_with = None; rid = None }

let encoded_size db inst = Bytes.length (encode db inst)
