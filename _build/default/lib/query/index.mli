(** Attribute indexes.

    An index on [(cls, attr)] maps every leaf value of that attribute
    (set members individually) to the instances of [cls] — subclasses
    included — holding it.  The index subscribes to the database's
    change events and stays consistent through creation, deletion,
    attribute writes and transaction rollback ([Invalidated] triggers a
    rebuild). *)

open Orion_core

type t

val create : Database.t -> cls:string -> attr:string -> t
(** Builds the index from the current extension and installs the
    maintenance subscription. *)

val cls : t -> string
val attr : t -> string

val lookup : t -> Value.t -> Oid.t list
(** Instances whose attribute holds the value (sorted). *)

val entry_count : t -> int
(** Total (value, oid) postings. *)

val drop : t -> unit
(** Remove the maintenance subscription; the index must not be used
    afterwards. *)
