type entry = { edges : (bool * Oid.t) list; deps : Oid.t list }

type t = {
  entries : entry Oid.Tbl.t;
  rdeps : unit Oid.Tbl.t Oid.Tbl.t;  (* referenced oid -> caching parents *)
  mutable generation : int;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
}

type stats = { hits : int; misses : int; invalidations : int }

let create () =
  {
    entries = Oid.Tbl.create 256;
    rdeps = Oid.Tbl.create 256;
    generation = 0;
    hits = 0;
    misses = 0;
    invalidations = 0;
  }

let flush (t : t) =
  t.invalidations <- t.invalidations + Oid.Tbl.length t.entries;
  Oid.Tbl.reset t.entries;
  Oid.Tbl.reset t.rdeps

(* A generation mismatch (schema mutation) empties the whole cache: any
   entry may reflect attributes that no longer exist or changed nature. *)
let sync t ~generation =
  if t.generation <> generation then begin
    flush t;
    t.generation <- generation
  end

let find t ~generation oid =
  sync t ~generation;
  match Oid.Tbl.find_opt t.entries oid with
  | Some e ->
      t.hits <- t.hits + 1;
      Some e.edges
  | None ->
      t.misses <- t.misses + 1;
      None

let register t ~dep ~parent =
  let set =
    match Oid.Tbl.find_opt t.rdeps dep with
    | Some set -> set
    | None ->
        let set = Oid.Tbl.create 4 in
        Oid.Tbl.replace t.rdeps dep set;
        set
  in
  Oid.Tbl.replace set parent ()

let add t ~generation oid ~deps edges =
  sync t ~generation;
  (match Oid.Tbl.find_opt t.entries oid with
  | Some _ -> ()  (* racing recomputation: keep the existing entry *)
  | None ->
      Oid.Tbl.replace t.entries oid { edges; deps };
      List.iter (fun dep -> register t ~dep ~parent:oid) deps)

let drop t oid =
  match Oid.Tbl.find_opt t.entries oid with
  | None -> ()
  | Some e ->
      Oid.Tbl.remove t.entries oid;
      t.invalidations <- t.invalidations + 1;
      List.iter
        (fun dep ->
          match Oid.Tbl.find_opt t.rdeps dep with
          | None -> ()
          | Some set ->
              Oid.Tbl.remove set oid;
              if Oid.Tbl.length set = 0 then Oid.Tbl.remove t.rdeps dep)
        e.deps

let invalidate t oid =
  drop t oid;
  match Oid.Tbl.find_opt t.rdeps oid with
  | None -> ()
  | Some set ->
      (* Collect first: [drop] edits the very sets we iterate. *)
      let parents = Oid.Tbl.fold (fun p () acc -> p :: acc) set [] in
      List.iter (drop t) parents

let length t = Oid.Tbl.length t.entries

let stats (t : t) : stats = { hits = t.hits; misses = t.misses; invalidations = t.invalidations }

let reset_stats (t : t) =
  t.hits <- 0;
  t.misses <- 0;
  t.invalidations <- 0
