(* Lockdep overhead: what wrapping every engine mutex in Omutex costs.

   Three loops over the same lock/unlock round-trip: a raw [Mutex.t],
   an [Omutex.t] with no tracer installed (the shipping default — one
   [bool ref] load and branch on top of the raw calls), and an
   [Omutex.t] feeding a live Lockdep engine (held-set update, graph
   edge probe, callstack capture for the witness site).

   The acceptance gate projects the disabled-mode delta onto the PR9
   32-client disjoint server workload: at its measured per-op cost and
   wrapped-acquisition rate, the added nanoseconds must stay under 2%
   of an op.  The projection uses the BENCH_PR9.json baseline figures
   (disjoint / clients-32 / domains-4 / partitions-4: 8114.8 ops/s =
   123 us/op, 80508 partition acquires over 12206 ops) with every
   wrapped class counted at ~3x the partition rate — 20 acquisitions
   per op, deliberately high so the gate errs against us.

   `--quick` trims iterations for the smoke alias (the gate still
   runs); `--json PATH` writes BENCH_PR10.json-style output. *)

module Omutex = Orion_util.Omutex
module Lockdep = Orion_analysis.Lockdep

let time_ns_per_round ~rounds f =
  let t0 = Unix.gettimeofday () in
  f rounds;
  let t1 = Unix.gettimeofday () in
  (t1 -. t0) *. 1e9 /. float_of_int rounds

(* The accumulator keeps the critical section from being optimized to
   nothing; it is returned via a sink so flambda cannot drop it. *)
let sink = ref 0

let bench_raw rounds =
  let m = Mutex.create () in
  let acc = ref 0 in
  for _ = 1 to rounds do
    Mutex.lock m;
    incr acc;
    Mutex.unlock m
  done;
  sink := !acc

let bench_omutex rounds =
  let m = Omutex.create Omutex.txsvc_core in
  let acc = ref 0 in
  for _ = 1 to rounds do
    Omutex.lock m;
    incr acc;
    Omutex.unlock m
  done;
  sink := !acc

type row = { case : string; ns_per_round : float }

(* BENCH_PR9.json, disjoint / clients-32 / domains-4 / partitions-4. *)
let pr9_ops_per_s = 8114.8
let pr9_partition_acquires_per_op = 80508.0 /. 12206.0
let assumed_locks_per_op = 20.0 (* ~3x the partition rate: every class *)
let overhead_budget_pct = 2.0

let () =
  let quick = Array.exists (String.equal "--quick") Sys.argv in
  let json_path =
    let rec scan i =
      if i >= Array.length Sys.argv - 1 then None
      else if String.equal Sys.argv.(i) "--json" then Some Sys.argv.(i + 1)
      else scan (i + 1)
    in
    scan 1
  in
  let rounds = if quick then 500_000 else 5_000_000 in
  print_endline
    "=== Lockdep bench: raw mutex vs omutex (disabled) vs omutex (enabled) ===";
  (* Warm up once so the first measured loop does not pay page-in. *)
  bench_raw 10_000;
  bench_omutex 10_000;
  let raw = time_ns_per_round ~rounds bench_raw in
  let disabled = time_ns_per_round ~rounds bench_omutex in
  (* Enabled: a private engine watches; restore the tracer after. *)
  let eng = Lockdep.create_engine () in
  Omutex.set_tracer (Some (Lockdep.tracer_of eng));
  let enabled_rounds = rounds / 10 in
  bench_omutex 10_000;
  let enabled = time_ns_per_round ~rounds:enabled_rounds bench_omutex in
  (match Lockdep.installed () with
  | Some global -> Omutex.set_tracer (Some (Lockdep.tracer_of global))
  | None -> Omutex.set_tracer None);
  let rows =
    [
      { case = "raw-mutex"; ns_per_round = raw };
      { case = "omutex-disabled"; ns_per_round = disabled };
      { case = "omutex-enabled"; ns_per_round = enabled };
    ]
  in
  List.iter
    (fun r -> Printf.printf "%-16s %8.1f ns/lock-unlock\n%!" r.case r.ns_per_round)
    rows;
  (* The engine must have seen the enabled traffic and found nothing:
     a single-threaded lock/unlock train is discipline-clean, and a
     finding here would mean the checker invents violations. *)
  (match Lockdep.engine_findings eng with
  | [] -> ()
  | f :: _ ->
      Printf.eprintf "FAIL: clean traffic produced a finding: %s\n%!"
        f.Orion_analysis.Schema_analysis.detail;
      exit 1);
  if Lockdep.edge_count eng <> 0 then begin
    (* One class alone can never add a may-precede edge. *)
    Printf.eprintf "FAIL: single-class traffic grew the order graph\n%!";
    exit 1
  end;
  (* The gate: project the disabled-mode delta onto the PR9 workload.
     Negative deltas are measurement noise — clamp to zero rather than
     celebrate. *)
  let delta_ns = Float.max 0. (disabled -. raw) in
  let op_ns = 1e9 /. pr9_ops_per_s in
  let overhead_pct = delta_ns *. assumed_locks_per_op /. op_ns *. 100. in
  Printf.printf
    "disabled-mode delta: %.1f ns/lock x %.0f locks/op = %.0f ns on a %.0f \
     ns op (%.3f%%, budget %.1f%%)\n\
     (PR9 baseline: %.1f ops/s disjoint/32-client/4-domain/4-partition, %.1f \
     partition acquires/op)\n%!"
    delta_ns assumed_locks_per_op
    (delta_ns *. assumed_locks_per_op)
    op_ns overhead_pct overhead_budget_pct pr9_ops_per_s
    pr9_partition_acquires_per_op;
  if overhead_pct > overhead_budget_pct then begin
    Printf.eprintf "FAIL: disabled-mode overhead %.3f%% exceeds %.1f%%\n%!"
      overhead_pct overhead_budget_pct;
    exit 1
  end;
  Printf.printf "disabled-mode overhead within budget\n%!";
  match json_path with
  | None -> ()
  | Some path ->
      let buf = Buffer.create 1024 in
      Buffer.add_string buf "{\n";
      Buffer.add_string buf "  \"schema\": \"orion-bench-lockdep-v1\",\n";
      Bench_meta.add buf;
      Buffer.add_string buf "  \"results\": [\n";
      List.iteri
        (fun i r ->
          Buffer.add_string buf
            (Printf.sprintf "    { \"case\": \"%s\", \"ns_per_round\": %.1f }%s\n"
               r.case r.ns_per_round
               (if i = List.length rows - 1 then "" else ",")))
        rows;
      Buffer.add_string buf "  ],\n";
      Buffer.add_string buf
        (Printf.sprintf
           "  \"projection\": { \"delta_ns_per_lock\": %.1f, \
            \"locks_per_op\": %.0f, \"op_ns\": %.0f, \"overhead_pct\": %.4f, \
            \"budget_pct\": %.1f }\n"
           delta_ns assumed_locks_per_op op_ns overhead_pct overhead_budget_pct);
      Buffer.add_string buf "}\n";
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Buffer.contents buf));
      Printf.printf "\nwrote %s\n%!" path
