(** Versions of composite objects (§5).

    The ORION model: an instance of a versionable class is a
    {e versionable object} — a generic instance collecting {e version
    instances} related by derivation.  A reference to a version
    instance is a {e static} binding; a reference to the generic
    instance is a {e dynamic} binding, resolved to the default version.

    Rules CV-1X…CV-4X are enforced partly here and partly in the core
    object manager (topology checks at both the version-instance and
    the generic-instance level; recursive deletion).  {!derive}
    implements the Figure-1 copy semantics. *)

open Orion_core

val is_versionable : Database.t -> Oid.t -> bool

val generic_of : Database.t -> Oid.t -> Oid.t
(** The generic instance of a version instance (or the argument itself
    when it is already generic).
    @raise Core_error.Error when the object is not versionable. *)

val versions : Database.t -> Oid.t -> Oid.t list
(** All live version instances of the versionable object designated by
    any of its members, oldest first. *)

val version_no : Database.t -> Oid.t -> int

val derived_from : Database.t -> Oid.t -> Oid.t option

val derive : Database.t -> Oid.t -> Oid.t
(** Derive a new version instance from an existing one.  Attribute
    values are copied with the §5.2 rules:
    - a weak reference or a shared composite reference is copied as is;
    - an {e independent exclusive} static reference to a version
      instance [d_k] is rebound to the generic instance [g_d]
      (Figure 1.b) — keeping it would violate CV-2X;
    - a {e dependent exclusive} static reference is set to Nil;
    - a dynamic reference (to a generic instance) is copied as is.
    Reverse references of the source version are {e not} copied: the
    parents still reference the original. *)

val set_default_version : Database.t -> Oid.t -> Oid.t option -> unit
(** Set (or clear, restoring the system default) the user default
    version of a versionable object.
    @raise Core_error.Error if the version does not belong to it. *)

val default_version : Database.t -> Oid.t -> Oid.t
(** Resolve the default version of a versionable object (§5.1): the
    user-specified default if any, else the version instance with the
    latest creation timestamp. *)

val bind_dynamically : Database.t -> holder:Oid.t -> attr:string -> Oid.t -> unit
(** Replace a reference to a version instance in [holder.attr] by a
    reference to its generic instance. *)

val bind_statically :
  Database.t -> holder:Oid.t -> attr:string -> version:Oid.t -> unit
(** Replace a reference to the generic instance of [version] in
    [holder.attr] by a direct reference to [version]. *)

type tree = { node : Oid.t; no : int; children : tree list }

val derivation_tree : Database.t -> Oid.t -> tree list
(** The version-derivation hierarchy of a versionable object: roots are
    the underived versions. *)

val pp_tree : Format.formatter -> tree -> unit
