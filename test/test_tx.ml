(* Tests for Orion_tx: snapshot undo, strict 2PL over the §7 protocols,
   abort semantics, and the round-robin scheduler. *)

open Orion_core
module A = Orion_schema.Attribute
module D = Orion_schema.Domain
module Schema = Orion_schema.Schema
module Protocol = Orion_locking.Protocol
module Snapshot = Orion_tx.Snapshot
(* ORION_TEST_LOCK_PARTITIONS=N runs the whole transaction suite over a
   partitioned lock space (CI exercises 1 and 4); unset keeps the
   single-table default. *)
module Tx = struct
  include Orion_tx.Tx_manager

  let lock_partitions =
    match Sys.getenv_opt "ORION_TEST_LOCK_PARTITIONS" with
    | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 1)
    | None -> 1

  let create ?compat ?escalation_threshold ?wal db =
    Orion_tx.Tx_manager.create ?compat ?escalation_threshold ?wal
      ~lock_partitions db
end
module Scheduler = Orion_tx.Scheduler
module Part_gen = Orion_workload.Part_gen
module Trace_gen = Orion_workload.Trace_gen

let check_integrity db =
  match Integrity.check db with
  | [] -> ()
  | violations ->
      Alcotest.failf "integrity: %a"
        (Format.pp_print_list Integrity.pp_violation)
        violations

let fixture () =
  let db = Database.create () in
  let define name attrs =
    ignore
      (Schema.define (Database.schema db) ~name ~attributes:attrs ()
        : Orion_schema.Class_def.t)
  in
  define "Leaf" [ A.make ~name:"Tag" ~domain:(D.Primitive D.P_integer) () ];
  define "Node"
    [
      A.make ~name:"Kids" ~domain:(D.Class "Leaf") ~collection:A.Set
        ~refkind:(A.composite ~exclusive:true ~dependent:true ())
        ();
      A.make ~name:"Refs" ~domain:(D.Class "Leaf") ~collection:A.Set
        ~refkind:(A.composite ~exclusive:false ~dependent:false ())
        ();
    ];
  db

(* Snapshots ------------------------------------------------------------------- *)

let test_snapshot_restores_attrs () =
  let db = fixture () in
  let leaf = Object_manager.create db ~cls:"Leaf" ~attrs:[ ("Tag", Value.Int 1) ] () in
  let snap = Snapshot.take db [ leaf ] in
  Object_manager.write_attr db leaf "Tag" (Value.Int 99);
  Snapshot.restore snap db;
  Alcotest.(check bool) "attr restored" true
    (Value.equal (Object_manager.read_attr db leaf "Tag") (Value.Int 1));
  check_integrity db

let test_snapshot_resurrects_deleted () =
  let db = fixture () in
  let node = Object_manager.create db ~cls:"Node" () in
  let leaf = Object_manager.create db ~cls:"Leaf" ~parents:[ (node, "Kids") ] () in
  let snap = Snapshot.take db [ node; leaf ] in
  Object_manager.delete db node;
  Alcotest.(check bool) "both gone" true
    ((not (Database.exists db node)) && not (Database.exists db leaf));
  Snapshot.restore snap db;
  Alcotest.(check bool) "both back" true
    (Database.exists db node && Database.exists db leaf);
  Alcotest.(check bool) "membership restored" true (Traversal.child_of db leaf node);
  check_integrity db

let test_snapshot_first_capture_wins () =
  let db = fixture () in
  let leaf = Object_manager.create db ~cls:"Leaf" ~attrs:[ ("Tag", Value.Int 1) ] () in
  let snap = Snapshot.take db [ leaf ] in
  Object_manager.write_attr db leaf "Tag" (Value.Int 2);
  ignore (Snapshot.extend snap db [ leaf ] : (Oid.t * Snapshot.capture) list);
  Object_manager.write_attr db leaf "Tag" (Value.Int 3);
  Snapshot.restore snap db;
  Alcotest.(check bool) "original value restored" true
    (Value.equal (Object_manager.read_attr db leaf "Tag") (Value.Int 1))

(* Transactions ----------------------------------------------------------------- *)

let test_commit_keeps_changes () =
  let db = fixture () in
  let manager = Tx.create db in
  let tx = Tx.begin_tx manager in
  let node = Tx.create_object manager tx ~cls:"Node" () in
  let leaf = Tx.create_object manager tx ~cls:"Leaf" ~parents:[ (node, "Kids") ] () in
  ignore (Tx.commit manager tx : int list);
  Alcotest.(check bool) "objects committed" true
    (Database.exists db node && Database.exists db leaf);
  Alcotest.(check bool) "tx state" true (Tx.state tx = Tx.Committed);
  check_integrity db

let test_abort_removes_created () =
  let db = fixture () in
  let manager = Tx.create db in
  let tx = Tx.begin_tx manager in
  let node = Tx.create_object manager tx ~cls:"Node" () in
  let leaf = Tx.create_object manager tx ~cls:"Leaf" ~parents:[ (node, "Kids") ] () in
  ignore (Tx.abort manager tx : int list);
  Alcotest.(check bool) "created objects gone" true
    ((not (Database.exists db node)) && not (Database.exists db leaf));
  Alcotest.(check int) "database empty" 0 (Database.count db);
  check_integrity db

let test_abort_restores_deleted_composite () =
  let db = fixture () in
  let node = Object_manager.create db ~cls:"Node" () in
  let leaf = Object_manager.create db ~cls:"Leaf" ~parents:[ (node, "Kids") ] () in
  let manager = Tx.create db in
  let tx = Tx.begin_tx manager in
  Tx.delete_object manager tx node;
  Alcotest.(check bool) "cascade happened" false (Database.exists db leaf);
  ignore (Tx.abort manager tx : int list);
  Alcotest.(check bool) "composite restored" true
    (Database.exists db node && Database.exists db leaf);
  Alcotest.(check bool) "reverse references restored" true
    (Traversal.parents_of db leaf = [ node ]);
  check_integrity db

let test_abort_restores_write () =
  let db = fixture () in
  let node = Object_manager.create db ~cls:"Node" () in
  let l1 = Object_manager.create db ~cls:"Leaf" ~parents:[ (node, "Refs") ] () in
  let l2 = Object_manager.create db ~cls:"Leaf" () in
  let manager = Tx.create db in
  let tx = Tx.begin_tx manager in
  Tx.write_attr manager tx node "Refs" (Value.VSet [ Value.Ref l2 ]);
  Alcotest.(check bool) "swap applied" true (Traversal.child_of db l2 node);
  ignore (Tx.abort manager tx : int list);
  Alcotest.(check bool) "old membership restored" true (Traversal.child_of db l1 node);
  Alcotest.(check bool) "new membership undone" false (Traversal.child_of db l2 node);
  check_integrity db

let test_abort_restores_remove_component () =
  let db = fixture () in
  let node = Object_manager.create db ~cls:"Node" () in
  let leaf = Object_manager.create db ~cls:"Leaf" ~parents:[ (node, "Kids") ] () in
  let manager = Tx.create db in
  let tx = Tx.begin_tx manager in
  (* Removing the dependent leaf deletes it (existence rule)... *)
  Tx.remove_component manager tx ~parent:node ~attr:"Kids" ~child:leaf;
  Alcotest.(check bool) "deleted" false (Database.exists db leaf);
  (* ...and abort brings it back with its membership. *)
  ignore (Tx.abort manager tx : int list);
  Alcotest.(check bool) "restored" true (Database.exists db leaf);
  Alcotest.(check bool) "membership back" true (Traversal.child_of db leaf node);
  check_integrity db

let test_blocking_and_wakeup () =
  let db = fixture () in
  let node = Object_manager.create db ~cls:"Node" () in
  let manager = Tx.create db in
  let t1 = Tx.begin_tx manager in
  let t2 = Tx.begin_tx manager in
  Alcotest.(check bool) "t1 gets X" true
    (Tx.lock_instance manager t1 node Protocol.Update = `Granted);
  Alcotest.(check bool) "t2 blocks" true
    (Tx.lock_instance manager t2 node Protocol.Read_ = `Blocked);
  Alcotest.(check bool) "t2 parked" true (Tx.state t2 = Tx.Blocked);
  let unblocked = Tx.commit manager t1 in
  Alcotest.(check (list Alcotest.int)) "t2 woken" [ Tx.tx_id t2 ] unblocked;
  Alcotest.(check bool) "t2 active again" true (Tx.state t2 = Tx.Active)

(* Regression: aborting a [Blocked] transaction must dequeue its
   pending lock request — a wire-level cancel or lock timeout would
   otherwise leave an orphan waiter that gets granted to a dead
   transaction (and steals the grant from live ones behind it). *)
let test_abort_blocked_dequeues_request () =
  let db = fixture () in
  let node = Object_manager.create db ~cls:"Node" () in
  let manager = Tx.create db in
  let t1 = Tx.begin_tx manager in
  let t2 = Tx.begin_tx manager in
  let t3 = Tx.begin_tx manager in
  Alcotest.(check bool) "t1 X" true
    (Tx.lock_instance manager t1 node Protocol.Update = `Granted);
  Alcotest.(check bool) "t2 queues" true
    (Tx.lock_instance manager t2 node Protocol.Update = `Blocked);
  Alcotest.(check bool) "t3 queues behind t2" true
    (Tx.lock_instance manager t3 node Protocol.Update = `Blocked);
  (* Cancelling t2 while it is still queued grants nothing... *)
  Alcotest.(check (list Alcotest.int)) "abort of queued t2 wakes nobody" []
    (Tx.abort manager t2);
  Alcotest.(check bool) "t2 aborted" true (Tx.state t2 = Tx.Aborted);
  (* ...and t1's release must skip the dead waiter and wake t3. *)
  Alcotest.(check (list Alcotest.int)) "commit wakes t3, not the dead t2"
    [ Tx.tx_id t3 ] (Tx.commit manager t1);
  Alcotest.(check bool) "t3 active" true (Tx.state t3 = Tx.Active);
  ignore (Tx.commit manager t3 : int list)

(* Supervisors holding only transaction ids (the server's deadlock
   breaker, when a victim's session is already gone) must be able to
   finish the victim: abort_id releases its locks and wakes waiters
   exactly like abort on the handle. *)
let test_abort_id () =
  let db = fixture () in
  let node = Object_manager.create db ~cls:"Node" () in
  let manager = Tx.create db in
  let t1 = Tx.begin_tx manager in
  let t2 = Tx.begin_tx manager in
  Alcotest.(check bool) "t1 X" true
    (Tx.lock_instance manager t1 node Protocol.Update = `Granted);
  Alcotest.(check bool) "t2 queues" true
    (Tx.lock_instance manager t2 node Protocol.Update = `Blocked);
  Alcotest.(check (list Alcotest.int)) "aborting t1 by id wakes t2"
    [ Tx.tx_id t2 ] (Tx.abort_id manager (Tx.tx_id t1));
  Alcotest.(check bool) "t1 aborted" true (Tx.state t1 = Tx.Aborted);
  Alcotest.(check bool) "t2 active" true (Tx.state t2 = Tx.Active);
  Alcotest.(check (list Alcotest.int)) "unknown id is a no-op" []
    (Tx.abort_id manager 999);
  Alcotest.(check (list Alcotest.int)) "finished id is a no-op" []
    (Tx.abort_id manager (Tx.tx_id t1));
  ignore (Tx.commit manager t2 : int list)

let test_commit_of_blocked_or_finished_raises () =
  let db = fixture () in
  let node = Object_manager.create db ~cls:"Node" () in
  let manager = Tx.create db in
  let t1 = Tx.begin_tx manager in
  let t2 = Tx.begin_tx manager in
  ignore (Tx.lock_instance manager t1 node Protocol.Update : [ `Granted | `Blocked ]);
  ignore (Tx.lock_instance manager t2 node Protocol.Update : [ `Granted | `Blocked ]);
  Alcotest.check_raises "commit while blocked"
    (Invalid_argument "Tx_manager.commit: transaction is blocked on a lock")
    (fun () -> ignore (Tx.commit manager t2 : int list));
  ignore (Tx.commit manager t1 : int list);
  ignore (Tx.commit manager t2 : int list);
  Alcotest.check_raises "commit twice"
    (Invalid_argument "Tx_manager.commit: transaction already finished")
    (fun () -> ignore (Tx.commit manager t2 : int list))

let test_double_abort_is_idempotent () =
  let db = fixture () in
  let leaf = Object_manager.create db ~cls:"Leaf" ~attrs:[ ("Tag", Value.Int 1) ] () in
  let manager = Tx.create db in
  let t1 = Tx.begin_tx manager in
  Tx.write_attr manager t1 leaf "Tag" (Value.Int 2);
  ignore (Tx.abort manager t1 : int list);
  (* Another transaction commits a newer value... *)
  let t2 = Tx.begin_tx manager in
  Tx.write_attr manager t2 leaf "Tag" (Value.Int 3);
  ignore (Tx.commit manager t2 : int list);
  (* ...which a second abort of t1 (say a client cancel racing the
     deadlock detector) must not clobber with its stale snapshot. *)
  Alcotest.(check (list Alcotest.int)) "second abort is a no-op" []
    (Tx.abort manager t1);
  Alcotest.(check bool) "t2's commit survives" true
    (Value.equal (Object_manager.read_attr db leaf "Tag") (Value.Int 3))

(* End-to-end deadlock path at the manager level: detect the cycle,
   abort the victim, verify the survivor is woken and can finish. *)
let test_deadlock_victim_abort_wakes_survivor () =
  let db = fixture () in
  let a = Object_manager.create db ~cls:"Leaf" () in
  let b = Object_manager.create db ~cls:"Leaf" () in
  let manager = Tx.create db in
  let t1 = Tx.begin_tx manager in
  let t2 = Tx.begin_tx manager in
  Alcotest.(check bool) "t1 X a" true
    (Tx.lock_instance manager t1 a Protocol.Update = `Granted);
  Alcotest.(check bool) "t2 X b" true
    (Tx.lock_instance manager t2 b Protocol.Update = `Granted);
  Alcotest.(check bool) "t1 waits for b" true
    (Tx.lock_instance manager t1 b Protocol.Update = `Blocked);
  Alcotest.(check bool) "no cycle yet" true (Tx.find_deadlock manager = None);
  Alcotest.(check bool) "t2 waits for a" true
    (Tx.lock_instance manager t2 a Protocol.Update = `Blocked);
  let cycle =
    match Tx.find_deadlock manager with
    | Some cycle -> cycle
    | None -> Alcotest.fail "deadlock undetected"
  in
  Alcotest.(check bool) "cycle is {t1,t2}" true
    (List.sort compare cycle = [ Tx.tx_id t1; Tx.tx_id t2 ]);
  (* The scheduler's victim policy: youngest in the cycle. *)
  let victim = List.fold_left max min_int cycle in
  Alcotest.(check int) "victim is the youngest" (Tx.tx_id t2) victim;
  Alcotest.(check (list Alcotest.int)) "victim's release wakes t1"
    [ Tx.tx_id t1 ] (Tx.abort manager t2);
  Alcotest.(check bool) "t1 runnable" true (Tx.state t1 = Tx.Active);
  Alcotest.(check bool) "cycle broken" true (Tx.find_deadlock manager = None);
  ignore (Tx.commit manager t1 : int list)

let test_lock_escalation () =
  let db = fixture () in
  let leaves = List.init 10 (fun _ -> Object_manager.create db ~cls:"Leaf" ()) in
  let manager = Tx.create ~escalation_threshold:4 db in
  let tx = Tx.begin_tx manager in
  List.iteri
    (fun i leaf ->
      Alcotest.(check bool)
        (Printf.sprintf "lock %d granted" i)
        true
        (Tx.lock_instance manager tx leaf Protocol.Update = `Granted))
    leaves;
  Alcotest.(check (list Alcotest.string)) "escalated to the class lock" [ "Leaf" ]
    (Tx.escalated manager tx);
  (* After escalation the class X lock blocks every other accessor. *)
  let other = Tx.begin_tx manager in
  Alcotest.(check bool) "others blocked by class lock" true
    (Tx.lock_instance manager other (List.hd leaves) Protocol.Read_ = `Blocked);
  ignore (Tx.commit manager tx : int list);
  Alcotest.(check bool) "unblocked after commit" true (Tx.state other = Tx.Active)

(* Regression: escalation must trigger on DISTINCT instances, not raw
   acquisitions — re-locking one hot object [threshold] times is not
   class-wide access and must leave the class unescalated. *)
let test_escalation_counts_distinct_instances () =
  let db = fixture () in
  let hot = Object_manager.create db ~cls:"Leaf" () in
  let manager = Tx.create ~escalation_threshold:4 db in
  let tx = Tx.begin_tx manager in
  for i = 1 to 6 do
    Alcotest.(check bool)
      (Printf.sprintf "re-lock %d granted" i)
      true
      (Tx.lock_instance manager tx hot Protocol.Update = `Granted)
  done;
  Alcotest.(check (list Alcotest.string)) "one hot instance never escalates" []
    (Tx.escalated manager tx);
  (* A concurrent reader of a different leaf stays unblocked — proof no
     class X lock snuck in. *)
  let cold = Object_manager.create db ~cls:"Leaf" () in
  let other = Tx.begin_tx manager in
  Alcotest.(check bool) "other leaf readable" true
    (Tx.lock_instance manager other cold Protocol.Read_ = `Granted);
  ignore (Tx.commit manager other : int list);
  (* Touching distinct instances does cross the threshold. *)
  let leaves = List.init 3 (fun _ -> Object_manager.create db ~cls:"Leaf" ()) in
  List.iter
    (fun leaf ->
      ignore (Tx.lock_instance manager tx leaf Protocol.Update
               : [ `Granted | `Blocked ]))
    leaves;
  Alcotest.(check (list Alcotest.string)) "distinct instances escalate" [ "Leaf" ]
    (Tx.escalated manager tx);
  ignore (Tx.commit manager tx : int list)

let test_escalation_denied_under_contention () =
  let db = fixture () in
  let leaves = List.init 6 (fun _ -> Object_manager.create db ~cls:"Leaf" ()) in
  let manager = Tx.create ~escalation_threshold:3 db in
  let t1 = Tx.begin_tx manager in
  let t2 = Tx.begin_tx manager in
  (* t2 holds one instance lock: t1's escalation to class X must fail,
     but its instance locking continues. *)
  Alcotest.(check bool) "t2 holds a leaf" true
    (Tx.lock_instance manager t2 (List.nth leaves 5) Protocol.Update = `Granted);
  List.iteri
    (fun i leaf ->
      if i < 5 then
        Alcotest.(check bool)
          (Printf.sprintf "t1 lock %d" i)
          true
          (Tx.lock_instance manager t1 leaf Protocol.Update = `Granted))
    leaves;
  Alcotest.(check (list Alcotest.string)) "no escalation under contention" []
    (Tx.escalated manager t1);
  ignore (Tx.commit manager t1 : int list);
  ignore (Tx.commit manager t2 : int list)

(* Scheduler -------------------------------------------------------------------- *)

let test_scheduler_serial_equivalence () =
  (* Two writers of the same composite object must serialize; the
     mutations both apply. *)
  let forest = Part_gen.generate ~roots:1 { Part_gen.default with depth = 1; seed = 3 } in
  let db = forest.Part_gen.db in
  let root = List.hd forest.Part_gen.roots in
  let manager = Tx.create db in
  let counter = ref 0 in
  let script =
    [
      Scheduler.Lock_composite (root, Protocol.Update);
      Scheduler.Mutate (fun _ -> incr counter);
    ]
  in
  let result = Scheduler.run manager [ script; script; script ] in
  Alcotest.(check int) "all commit" 3 result.Scheduler.committed;
  Alcotest.(check int) "all mutations ran" 3 !counter;
  Alcotest.(check bool) "serialization caused blocking" true
    (result.Scheduler.blocks > 0);
  check_integrity db

let test_scheduler_deadlock_recovery () =
  (* Distinct root and component classes: with a self-referential class
     the protocol already serializes updates at the class level (IX vs
     IXO on the same granule), so no deadlock could arise. *)
  let db = fixture () in
  let r1 = Object_manager.create db ~cls:"Node" () in
  let r2 = Object_manager.create db ~cls:"Node" () in
  ignore (Object_manager.create db ~cls:"Leaf" ~parents:[ (r1, "Kids") ] () : Oid.t);
  ignore (Object_manager.create db ~cls:"Leaf" ~parents:[ (r2, "Kids") ] () : Oid.t);
  let manager = Tx.create db in
  (* Opposite lock orders: classic deadlock. *)
  let s1 =
    [
      Scheduler.Lock_composite (r1, Protocol.Update);
      Scheduler.Lock_composite (r2, Protocol.Update);
    ]
  in
  let s2 =
    [
      Scheduler.Lock_composite (r2, Protocol.Update);
      Scheduler.Lock_composite (r1, Protocol.Update);
    ]
  in
  let result = Scheduler.run manager [ s1; s2 ] in
  Alcotest.(check int) "both eventually commit" 2 result.Scheduler.committed;
  Alcotest.(check bool) "a deadlock was broken" true (result.Scheduler.deadlocks >= 1);
  check_integrity db

let test_trace_generators_complete () =
  let forest = Part_gen.generate ~roots:4 { Part_gen.default with depth = 2; seed = 9 } in
  let db = forest.Part_gen.db in
  let config = { Trace_gen.default with txs = 8; ops_per_tx = 2 } in
  let run scripts =
    let manager = Tx.create db in
    Scheduler.run manager scripts
  in
  let c = run (Trace_gen.composite_scripts db ~roots:forest.Part_gen.roots config) in
  Alcotest.(check int) "composite trace commits" 8 c.Scheduler.committed;
  let i = run (Trace_gen.instance_scripts db ~roots:forest.Part_gen.roots config) in
  Alcotest.(check int) "instance trace commits" 8 i.Scheduler.committed

(* Property: interleaved create/delete transactions with random
   aborts leave the database consistent. *)
let prop_abort_consistency =
  QCheck.Test.make ~name:"random commit/abort keeps integrity" ~count:40
    QCheck.(make Gen.(list_size (int_bound 20) (pair bool (int_bound 3))))
    (fun plan ->
      let db = fixture () in
      let manager = Tx.create db in
      let survivors = ref [] in
      List.iter
        (fun (do_commit, kids) ->
          let tx = Tx.begin_tx manager in
          (try
             let node = Tx.create_object manager tx ~cls:"Node" () in
             for _ = 1 to kids do
               ignore
                 (Tx.create_object manager tx ~cls:"Leaf" ~parents:[ (node, "Kids") ] ()
                   : Oid.t)
             done;
             (* Also mutate a previously committed object. *)
             (match !survivors with
             | prev :: _ ->
                 let extra = Tx.create_object manager tx ~cls:"Leaf" () in
                 Tx.write_attr manager tx prev "Refs" (Value.VSet [ Value.Ref extra ])
             | [] -> ());
             if do_commit then begin
               ignore (Tx.commit manager tx : int list);
               survivors := node :: !survivors
             end
             else ignore (Tx.abort manager tx : int list)
           with Core_error.Error _ -> ignore (Tx.abort manager tx : int list)))
        plan;
      Integrity.check db = [])

(* Property: [Snapshot.extend] is first-capture-wins.  Over any
   interleaving of writes and extends, the oid comes back as freshly
   captured from exactly the first extend, that capture holds the value
   current at that moment, and restore brings that value back —
   regardless of every later write and re-extend. *)
let prop_extend_first_capture_wins =
  QCheck.Test.make ~name:"extend: first capture wins" ~count:100
    QCheck.(make Gen.(list_size (int_range 1 20) (pair small_nat bool)))
    (fun plan ->
      let db = fixture () in
      let leaf =
        Object_manager.create db ~cls:"Leaf" ~attrs:[ ("Tag", Value.Int (-1)) ] ()
      in
      let snap = Snapshot.take db [] in
      let first = ref None in
      let fresh_total = ref 0 in
      List.iter
        (fun (v, do_extend) ->
          Object_manager.write_attr db leaf "Tag" (Value.Int v);
          if do_extend then
            match Snapshot.extend snap db [ leaf ] with
            | [] -> ()
            | [ (oid, c) ] ->
                incr fresh_total;
                if !first = None then
                  first :=
                    Some
                      ( Oid.equal oid leaf,
                        Instance.attr c.Snapshot.image "Tag",
                        v )
            | _ :: _ :: _ -> fresh_total := 1000 (* impossible: one oid *))
        plan;
      Snapshot.restore snap db;
      match !first with
      | None -> !fresh_total = 0
      | Some (oid_ok, captured, v) ->
          oid_ok
          && !fresh_total = 1
          && captured = Some (Value.Int v)
          && Value.equal (Object_manager.read_attr db leaf "Tag") (Value.Int v))

let () =
  (* ORION_LOCKDEP=1: watch this suite's real lock traffic; install's
     exit hook fails the run on any discipline violation. *)
  Orion_analysis.Lockdep.install_from_env ();
  Alcotest.run "orion_tx"
    [
      ( "snapshots",
        [
          Alcotest.test_case "restore attrs" `Quick test_snapshot_restores_attrs;
          Alcotest.test_case "resurrect deleted" `Quick
            test_snapshot_resurrects_deleted;
          Alcotest.test_case "first capture wins" `Quick
            test_snapshot_first_capture_wins;
        ] );
      ( "transactions",
        [
          Alcotest.test_case "commit" `Quick test_commit_keeps_changes;
          Alcotest.test_case "abort removes created" `Quick test_abort_removes_created;
          Alcotest.test_case "abort restores deletion" `Quick
            test_abort_restores_deleted_composite;
          Alcotest.test_case "abort restores writes" `Quick test_abort_restores_write;
          Alcotest.test_case "abort restores removal" `Quick
            test_abort_restores_remove_component;
          Alcotest.test_case "blocking and wakeup" `Quick test_blocking_and_wakeup;
          Alcotest.test_case "abort by id" `Quick test_abort_id;
          Alcotest.test_case "abort of blocked dequeues request" `Quick
            test_abort_blocked_dequeues_request;
          Alcotest.test_case "commit guards" `Quick
            test_commit_of_blocked_or_finished_raises;
          Alcotest.test_case "double abort idempotent" `Quick
            test_double_abort_is_idempotent;
          Alcotest.test_case "deadlock victim abort wakes survivor" `Quick
            test_deadlock_victim_abort_wakes_survivor;
          Alcotest.test_case "lock escalation" `Quick test_lock_escalation;
          Alcotest.test_case "escalation counts distinct instances" `Quick
            test_escalation_counts_distinct_instances;
          Alcotest.test_case "escalation denied under contention" `Quick
            test_escalation_denied_under_contention;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "serialization" `Quick test_scheduler_serial_equivalence;
          Alcotest.test_case "deadlock recovery" `Quick
            test_scheduler_deadlock_recovery;
          Alcotest.test_case "trace generators" `Quick test_trace_generators_complete;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_abort_consistency;
          QCheck_alcotest.to_alcotest prop_extend_first_capture_wins;
        ] );
    ]
