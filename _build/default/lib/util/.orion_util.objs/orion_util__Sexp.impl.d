lib/util/sexp.ml: Buffer Format List Printf String
