type segment_id = int

type rid = { segment : segment_id; page : int; slot : int }

type segment = {
  mutable pages : int list;  (* most recently filled first *)
  live : (rid, unit) Hashtbl.t;
}

type journal_op =
  | J_segment_new of segment_id
  | J_record_put of rid
  | J_record_delete of rid
  | J_catalog_set of int

type t = {
  disk : Disk.t;
  pool : Buffer_pool.t;
  segments : (segment_id, segment) Hashtbl.t;
  mutable next_segment : segment_id;
  mutable free_pages : int list;  (* recycled long-record pages *)
  mutable catalog_page : int option;
  mutable journal : (journal_op -> unit) option;
}

let long_slot = -1

let set_journal t f = t.journal <- f

let journal t op = match t.journal with Some f -> f op | None -> ()

let create ?(page_size = 4096) ?(pool_capacity = 64) () =
  if page_size > 32768 then invalid_arg "Store.create: page_size > 32768";
  let disk = Disk.create ~page_size in
  {
    disk;
    pool = Buffer_pool.create ~capacity:pool_capacity disk;
    segments = Hashtbl.create 16;
    next_segment = 0;
    free_pages = [];
    catalog_page = None;
    journal = None;
  }

let disk t = t.disk
let pool t = t.pool

let new_segment t =
  let id = t.next_segment in
  t.next_segment <- id + 1;
  Hashtbl.replace t.segments id { pages = []; live = Hashtbl.create 64 };
  journal t (J_segment_new id);
  id

let segment_count t = t.next_segment

let segment t id =
  match Hashtbl.find_opt t.segments id with
  | Some seg -> seg
  | None -> invalid_arg (Printf.sprintf "Store: unknown segment %d" id)

let alloc_page t =
  match t.free_pages with
  | page :: rest ->
      t.free_pages <- rest;
      page
  | [] -> Disk.alloc t.disk

(* Long records: chain of whole pages, each laid out as
   [next:u32 le, 0xffffffff = none][len:u16][chunk]. *)

let no_next = 0xffffffff

let chunk_capacity t = Disk.page_size t.disk - 6

let write_long t data =
  let cap = chunk_capacity t in
  let total = Bytes.length data in
  let npages = max 1 ((total + cap - 1) / cap) in
  let pages = List.init npages (fun _ -> alloc_page t) in
  let rec fill offset = function
    | [] -> ()
    | page_no :: rest ->
        let chunk_len = min cap (total - offset) in
        let page = Buffer_pool.get t.pool page_no in
        let image = Page.image page in
        let next = match rest with [] -> no_next | next_page :: _ -> next_page in
        Bytes.set_int32_le image 0 (Int32.of_int next);
        Bytes.set_uint16_le image 4 chunk_len;
        Bytes.blit data offset image 6 chunk_len;
        Buffer_pool.mark_dirty t.pool page_no;
        fill (offset + chunk_len) rest
  in
  fill 0 pages;
  List.hd pages

let read_long t first_page =
  let buf = Buffer.create (chunk_capacity t) in
  let rec go page_no =
    let page = Buffer_pool.get t.pool page_no in
    let image = Page.image page in
    let next = Int32.to_int (Bytes.get_int32_le image 0) land 0xffffffff in
    let len = Bytes.get_uint16_le image 4 in
    Buffer.add_subbytes buf image 6 len;
    if next <> no_next then go next
  in
  go first_page;
  Buffer.to_bytes buf

let free_long t first_page =
  let rec go page_no =
    let page = Buffer_pool.get t.pool page_no in
    let image = Page.image page in
    let next = Int32.to_int (Bytes.get_int32_le image 0) land 0xffffffff in
    t.free_pages <- page_no :: t.free_pages;
    if next <> no_next then go next
  in
  go first_page

let write_catalog t data =
  (* Crash safety: write the new catalog chain completely before freeing
     the old one.  Freeing first put the old catalog's pages on the free
     list, so the new chain could overwrite them — a crash mid-write then
     left no intact catalog at all. *)
  let old = t.catalog_page in
  let page = write_long t data in
  t.catalog_page <- Some page;
  journal t (J_catalog_set page);
  match old with Some p -> free_long t p | None -> ()

let read_catalog t = Option.map (read_long t) t.catalog_page

let catalog_page t = t.catalog_page

let max_inline t = Disk.page_size t.disk - 4 (* header *) - 4 (* entry *) - 2

let fresh_segment_page t seg =
  let page_no = alloc_page t in
  let page = Buffer_pool.get t.pool page_no in
  ignore (Page.init (Page.image page) : Page.t);
  Buffer_pool.mark_dirty t.pool page_no;
  seg.pages <- page_no :: seg.pages;
  page_no

let try_insert_on t page_no data =
  let page = Buffer_pool.get t.pool page_no in
  match Page.insert page data with
  | Some slot ->
      Buffer_pool.mark_dirty t.pool page_no;
      Some slot
  | None -> None

let insert t ~segment:seg_id ?near data =
  let seg = segment t seg_id in
  let placed =
    if Bytes.length data > max_inline t then
      Some { segment = seg_id; page = write_long t data; slot = long_slot }
    else
      (* Placement preference: the [near] record's page (clustering with
         the first parent, §2.3), then the segment's most recent pages,
         then a fresh page. *)
      let candidates =
        (match near with
        | Some n when n.segment = seg_id && n.slot <> long_slot -> [ n.page ]
        | Some _ | None -> [])
        @ (match seg.pages with a :: b :: _ -> [ a; b ] | rest -> rest)
      in
      let rec try_pages = function
        | [] -> None
        | page_no :: rest -> (
            match try_insert_on t page_no data with
            | Some slot -> Some { segment = seg_id; page = page_no; slot }
            | None -> try_pages rest)
      in
      (match try_pages candidates with
      | Some rid -> Some rid
      | None ->
          let page_no = fresh_segment_page t seg in
          (match try_insert_on t page_no data with
          | Some slot -> Some { segment = seg_id; page = page_no; slot }
          | None -> None))
  in
  match placed with
  | Some rid ->
      Hashtbl.replace seg.live rid ();
      journal t (J_record_put rid);
      rid
  | None -> invalid_arg "Store.insert: record does not fit a fresh page"

let read t rid =
  let seg = segment t rid.segment in
  if not (Hashtbl.mem seg.live rid) then None
  else if rid.slot = long_slot then Some (read_long t rid.page)
  else
    let page = Buffer_pool.get t.pool rid.page in
    Page.read_slot page rid.slot

let delete t rid =
  let seg = segment t rid.segment in
  if Hashtbl.mem seg.live rid then begin
    Hashtbl.remove seg.live rid;
    journal t (J_record_delete rid);
    if rid.slot = long_slot then free_long t rid.page
    else begin
      let page = Buffer_pool.get t.pool rid.page in
      Page.delete_slot page rid.slot;
      Buffer_pool.mark_dirty t.pool rid.page
    end
  end

let update t rid data =
  let seg = segment t rid.segment in
  if not (Hashtbl.mem seg.live rid) then
    invalid_arg "Store.update: record not live";
  if rid.slot <> long_slot && Bytes.length data <= max_inline t then begin
    let page = Buffer_pool.get t.pool rid.page in
    if Page.update_slot page rid.slot data then begin
      Buffer_pool.mark_dirty t.pool rid.page;
      journal t (J_record_put rid);
      rid
    end
    else begin
      delete t rid;
      insert t ~segment:rid.segment ~near:rid data
    end
  end
  else begin
    delete t rid;
    insert t ~segment:rid.segment data
  end

let iter_segment t seg_id f =
  let seg = segment t seg_id in
  let rids = Hashtbl.fold (fun rid () acc -> rid :: acc) seg.live [] in
  List.iter
    (fun rid -> match read t rid with Some data -> f rid data | None -> ())
    rids

let record_count t seg_id = Hashtbl.length (segment t seg_id).live

let drop_cache t = Buffer_pool.drop_all t.pool

let compact_segment t seg_id =
  let seg = segment t seg_id in
  let rids = Hashtbl.fold (fun rid () acc -> rid :: acc) seg.live [] in
  let short_rids = List.filter (fun rid -> rid.slot <> long_slot) rids in
  let contents =
    List.filter_map
      (fun rid -> Option.map (fun data -> (rid, data)) (read t rid))
      short_rids
  in
  (* Free the old pages wholesale, then refill fresh ones. *)
  let old_pages = seg.pages in
  seg.pages <- [];
  List.iter (fun rid -> Hashtbl.remove seg.live rid) short_rids;
  t.free_pages <- old_pages @ t.free_pages;
  List.map
    (fun (old_rid, data) ->
      let fresh = insert t ~segment:seg_id data in
      (old_rid, fresh))
    contents

let flush t = Buffer_pool.flush t.pool

(* Recovery support ---------------------------------------------------------- *)

(* Log replay rebuilds the directory through these: page contents arrive
   physically (replayed [Disk.write]s), liveness and segment membership
   logically.  None of them touch page images or emit journal ops. *)

let restore_segment t id =
  while t.next_segment <= id do
    let fresh = t.next_segment in
    t.next_segment <- fresh + 1;
    Hashtbl.replace t.segments fresh { pages = []; live = Hashtbl.create 64 }
  done

let restore_record t rid =
  restore_segment t rid.segment;
  let seg = segment t rid.segment in
  Hashtbl.replace seg.live rid ();
  if rid.slot <> long_slot && not (List.mem rid.page seg.pages) then
    seg.pages <- rid.page :: seg.pages

let forget_record t rid =
  match Hashtbl.find_opt t.segments rid.segment with
  | None -> ()
  | Some seg -> Hashtbl.remove seg.live rid

let restore_catalog t page = t.catalog_page <- Some page

(* File serialization -------------------------------------------------------- *)

(* Version 2 appends an adler32 checksum after every page image, so the
   offline checker ({!Orion_analysis.Store_check}) can detect bit-rot
   without a live store.  Version-1 files (no checksums) still load. *)
let file_magic_v1 = "ORION-STORE-1\n"
let file_magic = "ORION-STORE-2\n"

type file_image = {
  fi_page_size : int;
  fi_pages : bytes array;
  fi_checksums : int array option;
  fi_next_segment : int;
  fi_segments : (segment_id * int list * rid list) list;
  fi_free_pages : int list;
  fi_catalog_page : int option;
}

let page_checksum image = Checksum.bytes image

let file_image_of_store t =
  Buffer_pool.flush t.pool;
  let stats = Disk.stats t.disk in
  let fi_pages =
    Array.init stats.Disk.allocated (fun page_no -> Disk.read t.disk page_no)
  in
  let fi_checksums = Some (Array.map page_checksum fi_pages) in
  let fi_segments =
    Hashtbl.fold (fun id seg acc -> (id, seg) :: acc) t.segments []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    |> List.map (fun (id, seg) ->
           let rids = Hashtbl.fold (fun rid () acc -> rid :: acc) seg.live [] in
           (id, seg.pages, rids))
  in
  {
    fi_page_size = Disk.page_size t.disk;
    fi_pages;
    fi_checksums;
    fi_next_segment = t.next_segment;
    fi_segments;
    fi_free_pages = t.free_pages;
    fi_catalog_page = t.catalog_page;
  }

let write_file_image fi path =
  let w = Bytes_rw.Writer.create () in
  let module W = Bytes_rw.Writer in
  let with_checksums = fi.fi_checksums <> None in
  W.string w (if with_checksums then file_magic else file_magic_v1);
  W.int w fi.fi_page_size;
  W.int w (Array.length fi.fi_pages);
  Array.iteri
    (fun page_no image ->
      W.string w (Bytes.to_string image);
      match fi.fi_checksums with
      | Some sums -> W.int w sums.(page_no)
      | None -> ())
    fi.fi_pages;
  W.int w fi.fi_next_segment;
  W.int w (List.length fi.fi_segments);
  List.iter
    (fun (id, pages, rids) ->
      W.int w id;
      W.int w (List.length pages);
      List.iter (W.int w) pages;
      W.int w (List.length rids);
      List.iter
        (fun rid ->
          W.int w rid.segment;
          W.int w rid.page;
          W.int w rid.slot)
        rids)
    fi.fi_segments;
  W.int w (List.length fi.fi_free_pages);
  List.iter (W.int w) fi.fi_free_pages;
  (match fi.fi_catalog_page with
  | None -> W.bool w false
  | Some page ->
      W.bool w true;
      W.int w page);
  (* Write-then-rename so a crash mid-save leaves the previous snapshot
     intact (the checkpoint/truncate protocol depends on it). *)
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc (W.contents w));
  Sys.rename tmp path

let save_file t path = write_file_image (file_image_of_store t) path

let read_file_image path =
  let ic = open_in_bin path in
  let data =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let module R = Bytes_rw.Reader in
  let r = R.of_bytes (Bytes.of_string data) in
  let with_checksums =
    try
      let magic = R.string r in
      if magic = file_magic then true
      else if magic = file_magic_v1 then false
      else failwith "bad magic"
    with _ -> failwith (path ^ ": not an orion store file")
  in
  let fi_page_size = R.int r in
  let allocated = R.int r in
  let sums = if with_checksums then Some (Array.make allocated 0) else None in
  let fi_pages =
    Array.init allocated (fun page_no ->
        let image = Bytes.of_string (R.string r) in
        (match sums with
        | Some sums -> sums.(page_no) <- R.int r
        | None -> ());
        image)
  in
  let fi_next_segment = R.int r in
  let nsegs = R.int r in
  let fi_segments =
    List.init nsegs (fun _ ->
        let id = R.int r in
        let npages = R.int r in
        let pages = List.init npages (fun _ -> R.int r) in
        let nlive = R.int r in
        let rids =
          List.init nlive (fun _ ->
              let segment = R.int r in
              let page = R.int r in
              let slot = R.int r in
              { segment; page; slot })
        in
        (id, pages, rids))
  in
  let nfree = R.int r in
  let fi_free_pages = List.init nfree (fun _ -> R.int r) in
  let fi_catalog_page = if R.bool r then Some (R.int r) else None in
  {
    fi_page_size;
    fi_pages;
    fi_checksums = sums;
    fi_next_segment;
    fi_segments;
    fi_free_pages;
    fi_catalog_page;
  }

let store_of_file_image ?(pool_capacity = 64) fi =
  let t = create ~page_size:fi.fi_page_size ~pool_capacity () in
  Array.iter
    (fun image ->
      let page_no = Disk.alloc t.disk in
      Disk.write t.disk page_no image)
    fi.fi_pages;
  t.next_segment <- fi.fi_next_segment;
  List.iter
    (fun (id, pages, rids) ->
      let live = Hashtbl.create 64 in
      List.iter (fun rid -> Hashtbl.replace live rid ()) rids;
      Hashtbl.replace t.segments id { pages; live })
    fi.fi_segments;
  t.free_pages <- fi.fi_free_pages;
  t.catalog_page <- fi.fi_catalog_page;
  Disk.reset_stats t.disk;
  t

(* Loading tolerates stale checksums (the image that was renamed into
   place is self-consistent or old, never half-written); the offline
   checker is where verification is strict. *)
let load_file ?pool_capacity path =
  store_of_file_image ?pool_capacity (read_file_image path)

let io_stats t = (Disk.stats t.disk, Buffer_pool.stats t.pool)

let reset_io_stats t =
  Disk.reset_stats t.disk;
  Buffer_pool.reset_stats t.pool
