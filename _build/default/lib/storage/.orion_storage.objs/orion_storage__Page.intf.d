lib/storage/page.mli:
