(** Process-wide observability: a metrics registry and span timing.

    Subsystems create {e instruments} — counters, gauges, fixed-bucket
    latency histograms — registered by name into a {!registry} (the
    process-wide {!default} unless one is passed explicitly).  A
    {!snapshot} collects every registered instrument into one
    structured value; the network server ships it over the wire and
    the bench writers embed it in [BENCH_*.json], so per-module [stats]
    views, server counters and perf numbers all read the same cells.

    Instruments are per-instance: creating a second instrument under a
    name already taken (say a test building its tenth database) simply
    {e re-points} the registration at the new instrument.  The old
    owner keeps its private counter — its [stats]/[reset_stats] view
    stays correct — while the registry reflects the most recently
    created instance, which in a server process is the one serving
    traffic.

    Thread-safety: counter and histogram updates are single word/field
    writes — racing updates from client threads or shard domains can at
    worst lose an increment, never crash.  Registry {e structure} —
    registering an instrument, iterating at snapshot/reset time — is
    guarded by a per-registry mutex, so shard domains can create
    instruments and serve [Stats] concurrently.  The {e span stack}
    (used for the slow-op breakdown) is domain-local and assumes the
    nested spans of one operation run on one thread, which holds in
    each shard's single-threaded reactor loop where spans are taken. *)

type registry

val default : registry
(** The process-wide registry. *)

val create_registry : unit -> registry
(** A private registry, for tests that must not observe the rest of
    the process. *)

(** {1 Instruments} *)

type counter

val counter : ?registry:registry -> string -> counter
(** A fresh counter registered under the name (replacing any previous
    registration of that name). *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int
val reset_counter : counter -> unit

val gauge : ?registry:registry -> string -> (unit -> int) -> unit
(** Register a callback gauge: read at snapshot time, so it can derive
    its value from live structures (e.g. the number of currently
    parked sessions). *)

type histogram

val histogram : ?registry:registry -> string -> histogram
(** A latency histogram over fixed log-spaced buckets from 10µs to
    ~100s, registered under the name. *)

val observe : histogram -> float -> unit
(** Record one duration, in seconds. *)

val histogram_count : histogram -> int
val reset_histogram : histogram -> unit

type histogram_summary = {
  count : int;
  sum : float;  (** seconds *)
  max : float;  (** seconds *)
  p50 : float;  (** seconds, estimated from bucket upper bounds *)
  p95 : float;
  p99 : float;
  buckets : int array;
      (** raw per-bucket counts, one per {!bucket_bounds} entry plus a
          final overflow cell — shipped so summaries from different
          servers/shards can be {!merge_summaries}'d without the
          percentile-averaging fallacy *)
}

val bucket_bounds : float array
(** The shared bucket upper bounds (seconds), log-spaced, three per
    decade from 10µs to ~100s.  Every histogram and every summary uses
    exactly this geometry, which is what makes merging sound. *)

val merge_summaries : histogram_summary list -> histogram_summary
(** Pointwise-sum the bucket arrays and recompute count/sum/max and the
    quantiles from the merged buckets.  [merge_summaries []] is the
    empty summary. *)

(** {1 Snapshot} *)

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * int) list;  (** sorted by name *)
  histograms : (string * histogram_summary) list;  (** sorted by name *)
}

val snapshot : ?registry:registry -> unit -> snapshot

val reset : ?registry:registry -> unit -> unit
(** Reset every registered counter and histogram (gauges are callbacks
    and have no state to reset). *)

val find_counter : snapshot -> string -> int option
val find_gauge : snapshot -> string -> int option
val find_histogram : snapshot -> string -> histogram_summary option

(** {1 Labels}

    A light label convention over flat instrument names:
    [labeled "lock.blocks" ("class", "Widget")] is
    ["lock.blocks{class=Widget}"].  Per-class lock cells use it so the
    static analyzer can join schema fan-in against observed
    contention. *)

val labeled : string -> string * string -> string

val label_value : string -> base:string -> key:string -> string option
(** [label_value "lock.blocks{class=Widget}" ~base:"lock.blocks"
    ~key:"class"] is [Some "Widget"]; [None] when the name is not a
    labeled instance of [base]. *)

(** {1 Rates}

    Client-side diffing of two snapshots ([orion stats --watch]): the
    deltas of every counter and histogram count divided by the sample
    interval.  Unchanged instruments are omitted. *)

type rates = {
  dt : float;  (** seconds between the snapshots *)
  counter_rates : (string * float) list;  (** increments per second *)
  gauge_values : (string * int) list;  (** from the later snapshot *)
  histogram_rates : (string * float * histogram_summary) list;
      (** observations per second, plus the later summary *)
}

val rates : before:snapshot -> after:snapshot -> dt:float -> rates

val pp_rates : Format.formatter -> rates -> unit

val pp_snapshot : Format.formatter -> snapshot -> unit
(** Human-readable rendering: counters and gauges one per line,
    histograms with count/p50/p95/p99/max in milliseconds. *)

val one_line : snapshot -> string
(** A compact single-line digest (for the server's periodic metrics
    line): a few load-bearing counters and gauges. *)

(** {1 Spans}

    [Span.time] wraps an operation: it times it, optionally records
    the duration into a histogram, and maintains a stack so nested
    spans become a {e breakdown} of their root.  When a root span
    (no parent on the stack) exceeds the slow-op threshold, one line
    with the breakdown goes to the slow-op sink. *)

module Span : sig
  val time : ?histogram:histogram -> string -> (unit -> 'a) -> 'a
  (** Run the thunk inside a named span.  Exceptions propagate; the
      span still closes (and can still be reported slow). *)

  val set_slow_threshold : float option -> unit
  (** Root spans slower than this many seconds are reported.
      [None] (the default) disables the slow-op log. *)

  val slow_threshold : unit -> float option

  val set_slow_sink : (string -> unit) -> unit
  (** Where slow-op lines go; default [prerr_endline]. *)

  val slow_ops_reported : unit -> int
  (** How many slow-op lines have been emitted (for tests). *)
end
