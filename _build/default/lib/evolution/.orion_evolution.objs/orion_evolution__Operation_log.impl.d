lib/evolution/operation_log.ml: Hashtbl Int List
