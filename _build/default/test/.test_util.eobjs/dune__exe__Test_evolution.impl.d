test/test_evolution.ml: Alcotest Database Format Gen Instance Integrity List Object_manager Orion_core Orion_evolution Orion_schema QCheck QCheck_alcotest Rref Traversal Value
