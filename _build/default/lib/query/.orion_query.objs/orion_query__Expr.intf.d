lib/query/expr.mli: Database Format Oid Orion_core Value
