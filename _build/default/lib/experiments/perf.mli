(** Quantitative experiments (P-series in DESIGN.md §5): counted
    effects — page fetches, lock-table events, object sizes — asserted
    directionally by the tests and printed by the bench harness.
    Wall-clock timings for the same code paths live in [bench/main.ml]
    (Bechamel). *)

val p5_clustering : ?vehicles:int -> unit -> Report.t
(** A4: cold composite traversal, components clustered with their first
    parent vs scattered round-robin — buffer misses per traversal. *)

val p6_composite_vs_instance_locking :
  ?roots:int -> ?depth:int -> ?fanout:int -> unit -> Report.t
(** A5: locks acquired and conflict events for the same trace run with
    composite-object locks vs instance-at-a-time locks. *)

val p7_matrix_ablation : ?txs:int -> unit -> Report.t
(** A3: the paper's conservative Figure-8 matrix vs the refined one on
    a mixed exclusive/shared trace — blocking events admitted. *)

val p8_lock_escalation : ?objects:int -> ?threshold:int -> unit -> Report.t
(** Escalation trades per-instance lock-table traffic for one class
    lock (and coarser conflicts). *)

val a1_rref_representation : ?n:int -> unit -> Report.t
(** A1: inline reverse references grow objects (§2.4's stated cost);
    the external representation keeps objects small but adds an
    indirection.  Reports average encoded object sizes. *)

val p4_evolution_cost : ?instances:int -> ?changes:int -> unit -> Report.t
(** A2: instances touched at change time (immediate) vs on first access
    (deferred). *)

val all : unit -> Report.t list
