lib/authz/authz_manager.ml: Auth Database Format Hashtbl List Oid Orion_core Orion_schema String Traversal
