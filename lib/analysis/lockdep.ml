(* The checker behind Omutex.  Structure: a pure-ish core ([process])
   over a local class record ([lclass]), shared by the live path
   (Omutex events, classes converted through the accessors) and the
   trace replayer (classes reconstructed from [C] header lines) — so a
   replayed trace goes through exactly the code the live run would
   have.

   Concurrency: one plain [Mutex.t] serializes the whole engine.  It
   must stay a plain mutex (the checker must never observe itself) and
   nothing under it may acquire any wrapped lock — the only outcalls
   are an atomic counter bump and buffered [out_channel] writes.  The
   obs instruments registered by [install] are a lock-free counter and
   gauges over atomics, safe to read from [Obs.snapshot] while it holds
   the (wrapped) registry mutex. *)

module SA = Schema_analysis
module Omutex = Orion_util.Omutex
module Obs = Orion_obs.Metrics

type lclass = {
  name : string;
  rank : int;
  no_block : bool;
  asc_region : string option;
}

type levent =
  | L_acquire of lclass * int * string
  | L_release of lclass * int
  | L_blocking of string * string
  | L_region of bool * string
  | L_allow of bool

type held = { h_cls : lclass; h_inst : int; h_site : string }

type tstate = {
  mutable held : held list;  (* innermost first *)
  mutable regions : string list;
  mutable allow : int;
}

type engine = {
  emu : Mutex.t;
  threads : (string, tstate) Hashtbl.t;
  edges : (string * string, string * string) Hashtbl.t;
      (* (outer class, inner class) -> witness sites of the first
         observation (outer's acquisition site, inner's) *)
  dedup : (string, unit) Hashtbl.t;
  mutable findings_rev : SA.finding list;
  trace : out_channel option;
  traced_classes : (string, unit) Hashtbl.t;
  n_edges : int Atomic.t;
  n_violations : int Atomic.t;
  mutable on_violation : unit -> unit;
}

let create_engine ?trace () =
  {
    emu = Mutex.create ();
    threads = Hashtbl.create 16;
    edges = Hashtbl.create 64;
    dedup = Hashtbl.create 16;
    findings_rev = [];
    trace =
      Option.map
        (fun f -> open_out_gen [ Open_append; Open_creat ] 0o644 f)
        trace;
    traced_classes = Hashtbl.create 16;
    n_edges = Atomic.make 0;
    n_violations = Atomic.make 0;
    on_violation = (fun () -> ());
  }

let flush_trace eng =
  Mutex.lock eng.emu;
  (match eng.trace with Some oc -> flush oc | None -> ());
  Mutex.unlock eng.emu

let edge_count eng = Atomic.get eng.n_edges

let state_of eng key =
  match Hashtbl.find_opt eng.threads key with
  | Some st -> st
  | None ->
      let st = { held = []; regions = []; allow = 0 } in
      Hashtbl.replace eng.threads key st;
      st

(* Findings ---------------------------------------------------------------- *)

let sev_weight = function SA.Error -> 0 | SA.Warning -> 1 | SA.Info -> 2

let sort_findings fs =
  List.stable_sort
    (fun a b -> compare (sev_weight a.SA.severity) (sev_weight b.SA.severity))
    fs

let add_finding eng ~dedup_key f =
  if not (Hashtbl.mem eng.dedup dedup_key) then begin
    Hashtbl.replace eng.dedup dedup_key ();
    eng.findings_rev <- f :: eng.findings_rev;
    Atomic.incr eng.n_violations;
    eng.on_violation ()
  end

(* May-precede graph ------------------------------------------------------- *)

let successors eng n =
  Hashtbl.fold
    (fun (a, b) w acc -> if String.equal a n then (b, w) :: acc else acc)
    eng.edges []

(* A path [src ->* dst] through observed edges, as (from, to, witness)
   steps; [None] when unreachable.  Graphs here are tiny (one node per
   lock class), so a naive DFS is plenty. *)
let find_path eng src dst =
  let visited = Hashtbl.create 8 in
  let rec go n acc =
    if String.equal n dst then Some (List.rev acc)
    else if Hashtbl.mem visited n then None
    else begin
      Hashtbl.replace visited n ();
      List.fold_left
        (fun r (next, w) ->
          match r with Some _ -> r | None -> go next ((n, next, w) :: acc))
        None (successors eng n)
    end
  in
  if String.equal src dst then None else go src []

let add_edge eng ~(outer : held) (cls : lclass) site =
  let k = (outer.h_cls.name, cls.name) in
  if not (Hashtbl.mem eng.edges k) then begin
    (match find_path eng cls.name outer.h_cls.name with
    | Some ((a, b, (w_outer, w_inner)) :: _) ->
        add_finding eng
          ~dedup_key:("cycle:" ^ outer.h_cls.name ^ "->" ^ cls.name)
          {
            SA.severity = SA.Error;
            code = "lock-order-inversion";
            cls = cls.name;
            path = [ outer.h_cls.name; cls.name ];
            detail =
              Printf.sprintf
                "%s (taken at %s) then %s (at %s) inverts the previously \
                 observed order %s (at %s) then %s (at %s)"
                outer.h_cls.name outer.h_site cls.name site a w_outer b
                w_inner;
          }
    | Some [] | None -> ());
    Hashtbl.replace eng.edges k (outer.h_site, site);
    Atomic.incr eng.n_edges
  end

(* Checks ------------------------------------------------------------------ *)

let on_acquire eng st (cls : lclass) inst site =
  let same, other =
    List.partition (fun h -> String.equal h.h_cls.name cls.name) st.held
  in
  (match same with
  | [] -> ()
  | _ when List.exists (fun h -> h.h_inst = inst) same ->
      let prior = List.find (fun h -> h.h_inst = inst) same in
      add_finding eng ~dedup_key:("recursive:" ^ cls.name)
        {
          SA.severity = SA.Error;
          code = "recursive-lock";
          cls = cls.name;
          path = [ cls.name ];
          detail =
            Printf.sprintf "%s#%d re-acquired at %s while already held (at %s)"
              cls.name inst site prior.h_site;
        }
  | _ -> (
      match cls.asc_region with
      | Some r when List.mem r st.regions ->
          let hi =
            List.fold_left (fun m h -> max m h.h_inst) min_int same
          in
          if inst < hi then
            add_finding eng ~dedup_key:("asc:" ^ cls.name)
              {
                SA.severity = SA.Error;
                code = "merged-search-protocol";
                cls = cls.name;
                path = [ cls.name ];
                detail =
                  Printf.sprintf
                    "%s#%d acquired at %s after #%d inside region %s: \
                     instance order must ascend"
                    cls.name inst site hi r;
              }
      | Some r ->
          let prior = List.hd same in
          add_finding eng ~dedup_key:("multi:" ^ cls.name)
            {
              SA.severity = SA.Error;
              code = "merged-search-protocol";
              cls = cls.name;
              path = [ cls.name ];
              detail =
                Printf.sprintf
                  ">1 %s instance held outside region %s: #%d (at %s) still \
                   held while acquiring #%d at %s"
                  cls.name r prior.h_inst prior.h_site inst site;
            }
      | None ->
          let prior = List.hd same in
          add_finding eng ~dedup_key:("multi:" ^ cls.name)
            {
              SA.severity = SA.Error;
              code = "same-class-nesting";
              cls = cls.name;
              path = [ cls.name ];
              detail =
                Printf.sprintf
                  "%s#%d (at %s) still held while acquiring #%d at %s"
                  cls.name prior.h_inst prior.h_site inst site;
            }));
  List.iter
    (fun h ->
      if cls.rank < h.h_cls.rank then
        add_finding eng
          ~dedup_key:("rank:" ^ h.h_cls.name ^ "->" ^ cls.name)
          {
            SA.severity = SA.Error;
            code = "rank-inversion";
            cls = cls.name;
            path = [ h.h_cls.name; cls.name ];
            detail =
              Printf.sprintf
                "%s (rank %d, taken at %s) acquired while holding %s (rank \
                 %d, taken at %s)"
                cls.name cls.rank site h.h_cls.name h.h_cls.rank h.h_site;
          };
      add_edge eng ~outer:h cls site)
    other;
  st.held <- { h_cls = cls; h_inst = inst; h_site = site } :: st.held

let on_release st (cls : lclass) inst =
  let rec drop = function
    | [] -> []
    | h :: rest when String.equal h.h_cls.name cls.name && h.h_inst = inst ->
        rest
    | h :: rest -> h :: drop rest
  in
  st.held <- drop st.held

let on_blocking eng st op site =
  if st.allow = 0 then
    List.iter
      (fun h ->
        if h.h_cls.no_block then
          add_finding eng
            ~dedup_key:("blocking:" ^ h.h_cls.name ^ ":" ^ op)
            {
              SA.severity = SA.Warning;
              code = "held-across-blocking";
              cls = h.h_cls.name;
              path = [ h.h_cls.name ];
              detail =
                Printf.sprintf "%s (taken at %s) held across %s at %s"
                  h.h_cls.name h.h_site op site;
            })
      st.held

let process eng st = function
  | L_acquire (cls, inst, site) -> on_acquire eng st cls inst site
  | L_release (cls, inst) -> on_release st cls inst
  | L_blocking (op, site) -> on_blocking eng st op site
  | L_region (true, r) -> st.regions <- r :: st.regions
  | L_region (false, r) ->
      let rec drop = function
        | [] -> []
        | x :: rest when String.equal x r -> rest
        | x :: rest -> x :: drop rest
      in
      st.regions <- drop st.regions
  | L_allow true -> st.allow <- st.allow + 1
  | L_allow false -> st.allow <- max 0 (st.allow - 1)

(* Live events ------------------------------------------------------------- *)

let lclass_of k =
  {
    name = Omutex.name k;
    rank = Omutex.rank k;
    no_block = Omutex.no_block k;
    asc_region = Omutex.asc_region k;
  }

let levent_of = function
  | Omutex.Acquire { cls; inst; site } -> L_acquire (lclass_of cls, inst, site)
  | Omutex.Release { cls; inst } -> L_release (lclass_of cls, inst)
  | Omutex.Blocking { op; site } -> L_blocking (op, site)
  | Omutex.Region_enter r -> L_region (true, r)
  | Omutex.Region_exit r -> L_region (false, r)
  | Omutex.Allow_enter _ -> L_allow true
  | Omutex.Allow_exit _ -> L_allow false

(* Trace lines.  [C name rank no_block asc_region] headers interleave
   lazily (emitted before a class's first [A]), so appending several
   processes to one file stays parseable; keys are pid-qualified for
   the same reason.  No token ever contains a space: class names, ops
   and regions are dotted/dashed identifiers, sites are "file.ml:N". *)

let write_trace eng oc key ev =
  let ensure_class (c : lclass) =
    if not (Hashtbl.mem eng.traced_classes c.name) then begin
      Hashtbl.replace eng.traced_classes c.name ();
      Printf.fprintf oc "C %s %d %d %s\n" c.name c.rank
        (if c.no_block then 1 else 0)
        (match c.asc_region with Some r -> r | None -> "-")
    end
  in
  match ev with
  | L_acquire (c, inst, site) ->
      ensure_class c;
      Printf.fprintf oc "A %s %s %d %s\n" key c.name inst site
  | L_release (c, inst) ->
      ensure_class c;
      Printf.fprintf oc "R %s %s %d\n" key c.name inst
  | L_blocking (op, site) -> Printf.fprintf oc "B %s %s %s\n" key op site
  | L_region (enter, r) ->
      Printf.fprintf oc "G %s %s %s\n" key (if enter then "+" else "-") r
  | L_allow enter ->
      Printf.fprintf oc "X %s %s\n" key (if enter then "+" else "-")

let feed eng ~key lev =
  Mutex.lock eng.emu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock eng.emu)
    (fun () ->
      (match eng.trace with
      | Some oc -> write_trace eng oc key lev
      | None -> ());
      process eng (state_of eng key) lev)

let handle eng ~key ev = feed eng ~key (levent_of ev)

let pid = lazy (Unix.getpid ())

let self_key () =
  Printf.sprintf "%d.%d.%d" (Lazy.force pid)
    ((Domain.self () :> int))
    (Thread.id (Thread.self ()))

let tracer_of eng ev = handle eng ~key:(self_key ()) ev

let engine_findings eng =
  Mutex.lock eng.emu;
  let fs = List.rev eng.findings_rev in
  Mutex.unlock eng.emu;
  sort_findings fs

let exit_code fs =
  if List.exists (fun f -> f.SA.severity = SA.Error) fs then 2
  else if List.exists (fun f -> f.SA.severity = SA.Warning) fs then 1
  else 0

(* Installation ------------------------------------------------------------ *)

let installed_engine : engine option ref = ref None
let installed () = !installed_engine

let findings () =
  match !installed_engine with
  | Some eng -> engine_findings eng
  | None -> []

let install ?trace () =
  match !installed_engine with
  | Some _ -> ()
  | None ->
      let eng = create_engine ?trace () in
      (* Instruments register before the tracer flips on: registration
         takes the (wrapped) registry mutex, and a half-installed
         engine must not see its own setup. *)
      let viol = Obs.counter "lockdep.violations" in
      eng.on_violation <- (fun () -> Obs.incr viol);
      Obs.gauge "lockdep.classes" (fun () -> List.length (Omutex.classes ()));
      Obs.gauge "lockdep.edges" (fun () -> Atomic.get eng.n_edges);
      installed_engine := Some eng;
      Omutex.set_tracer (Some (tracer_of eng));
      (* Every installation path (--lockdep, ORION_LOCKDEP, a trace
         file) gets the exit-time report: flush the trace, dump the
         findings to stderr, and force the process exit code to the
         findings' — how CI fails a lockdep-enabled suite.  Guarded by
         the idempotence check above, so the hook registers once. *)
      at_exit (fun () ->
          (match eng.trace with Some oc -> flush oc | None -> ());
          let fs = engine_findings eng in
          match exit_code fs with
          | 0 -> ()
          | code ->
              prerr_endline "lockdep: violations detected:";
              List.iter (fun f -> prerr_endline (SA.finding_to_sexp f)) fs;
              flush stderr;
              flush stdout;
              (* at_exit context: [exit] would recurse, so leave
                 directly — stdio is flushed just above. *)
              Unix._exit code)

let truthy = function "" | "0" | "false" | "no" -> false | _ -> true

let install_from_env () =
  let on =
    match Sys.getenv_opt "ORION_LOCKDEP" with
    | Some v -> truthy v
    | None -> false
  in
  let trace = Sys.getenv_opt "ORION_LOCKDEP_TRACE" in
  if on || trace <> None then install ?trace ()

(* Trace replay ------------------------------------------------------------ *)

let check_trace path =
  let eng = create_engine () in
  let classes : (string, lclass) Hashtbl.t = Hashtbl.create 16 in
  let cls_of lineno n =
    match Hashtbl.find_opt classes n with
    | Some c -> c
    | None ->
        failwith
          (Printf.sprintf "%s:%d: lock class %S used before its C header"
             path lineno n)
  in
  let int_of lineno s =
    match int_of_string_opt s with
    | Some i -> i
    | None ->
        failwith (Printf.sprintf "%s:%d: expected an integer, got %S" path
                    lineno s)
  in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lineno = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           let n = !lineno in
           match String.split_on_char ' ' line with
           | [ "C"; cname; r; nb; reg ] ->
               Hashtbl.replace classes cname
                 {
                   name = cname;
                   rank = int_of n r;
                   no_block = String.equal nb "1";
                   asc_region =
                     (if String.equal reg "-" then None else Some reg);
                 }
           | [ "A"; key; cname; inst; site ] ->
               feed eng ~key
                 (L_acquire (cls_of n cname, int_of n inst, site))
           | [ "R"; key; cname; inst ] ->
               feed eng ~key (L_release (cls_of n cname, int_of n inst))
           | [ "B"; key; op; site ] -> feed eng ~key (L_blocking (op, site))
           | [ "G"; key; pm; r ] ->
               feed eng ~key (L_region (String.equal pm "+", r))
           | [ "X"; key; pm ] -> feed eng ~key (L_allow (String.equal pm "+"))
           | [] | [ "" ] -> ()
           | _ ->
               failwith
                 (Printf.sprintf "%s:%d: unparseable lockdep trace line: %s"
                    path n line)
         done
       with End_of_file -> ());
      engine_findings eng)
