lib/query/index.mli: Database Oid Orion_core Value
