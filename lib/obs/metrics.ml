type counter = { c_name : string; mutable count : int }

(* Log-spaced bucket upper bounds, 10µs .. ~100s: three buckets per
   decade is enough resolution for p50/p95/p99 on latencies that span
   microsecond lock grants to multi-second parked waits. *)
let bucket_bounds =
  let per_decade = [ 1.0; 2.15; 4.64 ] in
  Array.of_list
    (List.concat_map
       (fun exp ->
         List.map (fun m -> m *. (10. ** float_of_int exp)) per_decade)
       [ -5; -4; -3; -2; -1; 0; 1 ])

type histogram = {
  h_name : string;
  buckets : int array;  (* one per bound, plus overflow at the end *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_max : float;
}

type instrument =
  | Counter of counter
  | Gauge of (unit -> int)
  | Histogram of histogram

module Omutex = Orion_util.Omutex

type registry = { tbl : (string, instrument) Hashtbl.t; mu : Omutex.t }

let create_registry () : registry =
  { tbl = Hashtbl.create 64; mu = Omutex.create Omutex.obs_registry }

let default = create_registry ()

(* The registry table itself is shared across domains (shards register
   and snapshot concurrently), so structural mutations and iteration
   take the registry mutex.  Instrument *updates* stay lock-free:
   racing increments can at worst lose a count, never crash.  The
   mutex is ranked (obs.registry): snapshot holds it while calling
   gauge closures, which read the tailer and the WAL, so those classes
   rank strictly above it. *)
let with_registry registry f = Omutex.with_lock registry.mu f

let register ?(registry = default) name instrument =
  with_registry registry (fun () -> Hashtbl.replace registry.tbl name instrument)

(* Counters --------------------------------------------------------------------- *)

let counter ?registry name =
  let c = { c_name = name; count = 0 } in
  register ?registry name (Counter c);
  c

let incr ?(by = 1) c = c.count <- c.count + by
let counter_value c = c.count
let reset_counter c = c.count <- 0

(* Gauges ----------------------------------------------------------------------- *)

let gauge ?registry name read = register ?registry name (Gauge read)

(* Histograms ------------------------------------------------------------------- *)

let histogram ?registry name =
  let h =
    {
      h_name = name;
      buckets = Array.make (Array.length bucket_bounds + 1) 0;
      h_count = 0;
      h_sum = 0.;
      h_max = 0.;
    }
  in
  register ?registry name (Histogram h);
  h

let bucket_index v =
  let n = Array.length bucket_bounds in
  let rec go i = if i >= n || v <= bucket_bounds.(i) then i else go (i + 1) in
  go 0

let observe h v =
  let v = if Float.is_nan v || v < 0. then 0. else v in
  h.buckets.(bucket_index v) <- h.buckets.(bucket_index v) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v > h.h_max then h.h_max <- v

let histogram_count h = h.h_count

let reset_histogram h =
  Array.fill h.buckets 0 (Array.length h.buckets) 0;
  h.h_count <- 0;
  h.h_sum <- 0.;
  h.h_max <- 0.

type histogram_summary = {
  count : int;
  sum : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
  buckets : int array;
}

(* A quantile as the upper bound of the bucket holding the q-th
   observation; the overflow bucket reports the observed max. *)
let quantile_of ~count ~max:max_v ~buckets q =
  if count = 0 then 0.
  else begin
    let rank =
      Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int count)))
    in
    let n = Array.length bucket_bounds in
    let rec go i seen =
      if i >= n then max_v
      else
        let seen = seen + buckets.(i) in
        if seen >= rank then Float.min bucket_bounds.(i) max_v else go (i + 1) seen
    in
    go 0 0
  end

let summarize (h : histogram) =
  (* Copy the live bucket array: the summary is a snapshot, not a view. *)
  let buckets = Array.copy h.buckets in
  {
    count = h.h_count;
    sum = h.h_sum;
    max = h.h_max;
    p50 = quantile_of ~count:h.h_count ~max:h.h_max ~buckets 0.50;
    p95 = quantile_of ~count:h.h_count ~max:h.h_max ~buckets 0.95;
    p99 = quantile_of ~count:h.h_count ~max:h.h_max ~buckets 0.99;
    buckets;
  }

(* Merging summaries from different servers/shards: bucket counts add
   pointwise, and the quantiles are recomputed from the merged buckets —
   the whole reason the raw buckets ride along on the wire (averaging
   percentiles is wrong). *)
let merge_summaries summaries =
  let width = Array.length bucket_bounds + 1 in
  let buckets = Array.make width 0 in
  let count = ref 0 and sum = ref 0. and max_v = ref 0. in
  List.iter
    (fun s ->
      count := !count + s.count;
      sum := !sum +. s.sum;
      if s.max > !max_v then max_v := s.max;
      Array.iteri
        (fun i n -> if i < width then buckets.(i) <- buckets.(i) + n)
        s.buckets)
    summaries;
  {
    count = !count;
    sum = !sum;
    max = !max_v;
    p50 = quantile_of ~count:!count ~max:!max_v ~buckets 0.50;
    p95 = quantile_of ~count:!count ~max:!max_v ~buckets 0.95;
    p99 = quantile_of ~count:!count ~max:!max_v ~buckets 0.99;
    buckets;
  }

(* Snapshot --------------------------------------------------------------------- *)

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * histogram_summary) list;
}

let by_name (a, _) (b, _) = String.compare a b

let snapshot ?(registry = default) () =
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  with_registry registry (fun () ->
      Hashtbl.iter
        (fun name instrument ->
          match instrument with
          | Counter c -> counters := (name, c.count) :: !counters
          | Gauge read ->
              let v = try read () with _ -> 0 in
              gauges := (name, v) :: !gauges
          | Histogram h -> histograms := (name, summarize h) :: !histograms)
        registry.tbl);
  {
    counters = List.sort by_name !counters;
    gauges = List.sort by_name !gauges;
    histograms = List.sort by_name !histograms;
  }

let reset ?(registry = default) () =
  with_registry registry (fun () ->
      Hashtbl.iter
        (fun _ instrument ->
          match instrument with
          | Counter c -> reset_counter c
          | Gauge _ -> ()
          | Histogram h -> reset_histogram h)
        registry.tbl)

let find_counter s name = List.assoc_opt name s.counters
let find_gauge s name = List.assoc_opt name s.gauges
let find_histogram s name = List.assoc_opt name s.histograms

let ms v = v *. 1e3

(* Labels ----------------------------------------------------------------------- *)

let labeled name (key, value) = Printf.sprintf "%s{%s=%s}" name key value

let label_value name ~base ~key =
  let prefix = Printf.sprintf "%s{%s=" base key in
  let plen = String.length prefix in
  let nlen = String.length name in
  if nlen > plen + 1
     && String.sub name 0 plen = prefix
     && name.[nlen - 1] = '}'
  then Some (String.sub name plen (nlen - plen - 1))
  else None

(* Rates ------------------------------------------------------------------------ *)

type rates = {
  dt : float;
  counter_rates : (string * float) list;
  gauge_values : (string * int) list;
  histogram_rates : (string * float * histogram_summary) list;
}

let rates ~before ~after ~dt =
  let dt = if dt <= 0. then 1e-9 else dt in
  let counter_rates =
    List.filter_map
      (fun (name, v) ->
        let v0 = Option.value (find_counter before name) ~default:0 in
        if v <> v0 then Some (name, float_of_int (v - v0) /. dt) else None)
      after.counters
  in
  let histogram_rates =
    List.filter_map
      (fun (name, h) ->
        let c0 =
          match find_histogram before name with Some h0 -> h0.count | None -> 0
        in
        if h.count <> c0 then
          Some (name, float_of_int (h.count - c0) /. dt, h)
        else None)
      after.histograms
  in
  { dt; counter_rates; gauge_values = after.gauges; histogram_rates }

let pp_rates ppf r =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (n, v) -> Format.fprintf ppf "%-40s %+.1f/s@," n v)
    r.counter_rates;
  List.iter
    (fun (n, v) -> Format.fprintf ppf "%-40s %d (gauge)@," n v)
    (List.filter (fun (_, v) -> v <> 0) r.gauge_values);
  List.iter
    (fun (n, v, h) ->
      Format.fprintf ppf "%-40s %+.1f/s p95=%.3fms@," n v (ms h.p95))
    r.histogram_rates;
  Format.fprintf ppf "@]"

(* The non-empty buckets of a summary, rendered compactly as
   [<=UPPERms:count] pairs (the overflow bucket prints as [inf]). *)
let pp_buckets ppf h =
  Array.iteri
    (fun i n ->
      if n > 0 then
        if i < Array.length bucket_bounds then
          Format.fprintf ppf " <=%gms:%d" (ms bucket_bounds.(i)) n
        else Format.fprintf ppf " inf:%d" n)
    h.buckets

let pp_snapshot ppf s =
  Format.fprintf ppf "@[<v>";
  List.iter (fun (n, v) -> Format.fprintf ppf "%-32s %d@," n v) s.counters;
  List.iter (fun (n, v) -> Format.fprintf ppf "%-32s %d (gauge)@," n v) s.gauges;
  List.iter
    (fun (n, h) ->
      Format.fprintf ppf
        "%-32s n=%d p50=%.3fms p95=%.3fms p99=%.3fms max=%.3fms@," n h.count
        (ms h.p50) (ms h.p95) (ms h.p99) (ms h.max);
      if h.count > 0 then
        Format.fprintf ppf "%-32s buckets:%a@," "" pp_buckets h)
    s.histograms;
  Format.fprintf ppf "@]"

let one_line s =
  let c name = Option.value (find_counter s name) ~default:0 in
  let g name = Option.value (find_gauge s name) ~default:0 in
  let dispatch =
    match find_histogram s "server.dispatch_seconds" with
    | Some h when h.count > 0 -> Printf.sprintf " dispatch_p95=%.2fms" (ms h.p95)
    | _ -> ""
  in
  Printf.sprintf
    "requests=%d sessions=%d parked=%d parks=%d lock_acq=%d lock_blocks=%d \
     deadlocks=%d wal_appends=%d%s"
    (c "server.requests") (g "server.sessions") (g "server.parked")
    (c "server.parks_total") (c "lock.acquisitions") (c "lock.blocks")
    (c "server.deadlock_victims") (c "wal.appends") dispatch

(* Spans ------------------------------------------------------------------------ *)

module Span = struct
  type span = {
    s_name : string;
    start : float;
    mutable children : (string * float) list;  (* newest first *)
  }

  (* The enclosing spans of the operation in flight, innermost first.
     One stack per domain: nested spans must run on one thread, which
     holds in each shard's reactor loop where all spans are taken. *)
  let stack_key : span list ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref [])

  let stack () = Domain.DLS.get stack_key

  let threshold = ref None
  let sink = ref prerr_endline
  let reported = ref 0

  let set_slow_threshold t = threshold := t
  let slow_threshold () = !threshold
  let set_slow_sink f = sink := f
  let slow_ops_reported () = !reported

  let report span elapsed =
    Stdlib.incr reported;
    let buf = Buffer.create 128 in
    Buffer.add_string buf
      (Printf.sprintf "slow op: %s took %.1fms" span.s_name (ms elapsed));
    (match List.rev span.children with
    | [] -> ()
    | children ->
        Buffer.add_string buf " (";
        List.iteri
          (fun i (name, dt) ->
            if i > 0 then Buffer.add_string buf ", ";
            Buffer.add_string buf (Printf.sprintf "%s %.1fms" name (ms dt)))
          children;
        Buffer.add_char buf ')');
    !sink (Buffer.contents buf)

  let time ?histogram name f =
    let span = { s_name = name; start = Unix.gettimeofday (); children = [] } in
    let stack = stack () in
    let outer = !stack in
    stack := span :: outer;
    let close () =
      let elapsed = Unix.gettimeofday () -. span.start in
      stack := outer;
      (match histogram with Some h -> observe h elapsed | None -> ());
      (match outer with
      | parent :: _ -> parent.children <- (name, elapsed) :: parent.children
      | [] -> (
          match !threshold with
          | Some limit when elapsed > limit -> report span elapsed
          | _ -> ()))
    in
    match f () with
    | result ->
        close ();
        result
    | exception e ->
        close ();
        raise e
end
