(** Record store: segments, record identifiers and physical clustering.

    A {e segment} is ORION's clustering unit: a set of pages holding the
    instances of one or more classes.  The paper (§2.3) clusters a new
    instance with its first parent when both classes live in the same
    segment — the [?near] hint implements exactly that placement.

    Records larger than a page spill to a chained long-record
    representation whose I/O cost (one fetch per chain page) is visible
    in the disk counters. *)

type t

type segment_id = int

type rid = { segment : segment_id; page : int; slot : int }
(** [slot = -1] marks a long (page-chained) record. *)

val create : ?page_size:int -> ?pool_capacity:int -> unit -> t
(** Defaults: 4096-byte pages, 64-frame pool. *)

val disk : t -> Disk.t
(** The underlying simulated disk — exposed for WAL attachment
    (write observers, crash injection) and recovery replay; application
    code should go through records. *)

val pool : t -> Buffer_pool.t

val flush : t -> unit
(** Write every dirty buffered page to the disk (a checkpoint's
    "force" step; each write is seen by the disk's observer). *)

val new_segment : t -> segment_id

val segment_count : t -> int

val insert : t -> segment:segment_id -> ?near:rid -> bytes -> rid
(** Place a record; with [~near] (a record of the same segment), try the
    same page first so parent and component share a page when space
    permits. *)

val read : t -> rid -> bytes option

val update : t -> rid -> bytes -> rid
(** In-place when the new image fits the original allocation; otherwise
    the record moves and the new rid is returned. *)

val delete : t -> rid -> unit

val iter_segment : t -> segment_id -> (rid -> bytes -> unit) -> unit
(** Live records of the segment, in unspecified order, paying buffer
    traffic for each page touched. *)

val record_count : t -> segment_id -> int

val drop_cache : t -> unit
(** Flush and empty the buffer pool: the next traversal is cold. *)

val write_catalog : t -> bytes -> unit
(** Store a catalog blob (superblock role: schema + object directory
    for {!val-read_catalog} after reopening the database around this
    store).  Replaces any previous catalog. *)

val read_catalog : t -> bytes option

val catalog_page : t -> int option
(** First page of the catalog's long-record chain — exposed so a WAL
    base backup can journal the pointer ([Catalog_set]). *)

(** {1 Journal hook}

    Directory mutations (liveness, segments, the catalog pointer) are
    not page-resident, so the WAL cannot see them through the disk
    observer; the journal hook reports them as they happen.  Recovery
    re-applies them through the [restore_*]/{!forget_record} calls
    below, which deliberately bypass both pages and the journal. *)

type journal_op =
  | J_segment_new of segment_id
  | J_record_put of rid
  | J_record_delete of rid
  | J_catalog_set of int

val set_journal : t -> (journal_op -> unit) option -> unit

(** {1 Recovery support} *)

val restore_segment : t -> segment_id -> unit
(** Ensure segments [0..id] exist (replay of [J_segment_new]). *)

val restore_record : t -> rid -> unit
(** Mark the record live and remember its page for placement (replay of
    [J_record_put]; the page image itself arrives via physical page
    replay). *)

val forget_record : t -> rid -> unit
(** Drop liveness without touching the page image or the free list
    (replay of [J_record_delete]). *)

val restore_catalog : t -> int -> unit
(** Point the catalog at an already-materialized long-record chain
    (replay of [J_catalog_set]). *)

val compact_segment : t -> segment_id -> (rid * rid) list
(** Rewrite every live record of the segment into fresh pages (long
    records are left in place: they own their pages already), freeing
    the old pages for reuse.  Returns the (old, new) moves; callers
    holding RIDs must apply them. *)

(** {1 File serialization}

    The simulated disk plus the store's bookkeeping (segments, live
    records, free pages, catalog pointer) written to a real file in a
    hand-rolled binary format, so a database survives process restarts
    ([orion repl --db file]). *)

val save_file : t -> string -> unit
(** Atomic: the image is written to a temporary sibling and renamed
    over [path], so a crash mid-save leaves the previous snapshot.
    Format version 2: every page image is followed by its adler32
    checksum, verified by the offline checker. *)

val load_file : ?pool_capacity:int -> string -> t
(** @raise Failure on a missing or corrupt file.  Stored page checksums
    are {e not} verified here (the rename protocol rules out
    half-written files); [orion fsck] is the strict reader. *)

(** {1 Offline file image}

    The parsed-but-not-materialized form of a store file: what
    {!save_file} writes and {!load_file} builds a store from, exposed so
    the offline checker ({!Orion_analysis.Store_check}) can verify
    checksums and directory agreement against bytes, and so the
    corruption-injection tests can seed precise faults. *)

type file_image = {
  fi_page_size : int;
  fi_pages : bytes array;
  fi_checksums : int array option;
      (** stored per-page adler32; [None] for version-1 files *)
  fi_next_segment : int;
  fi_segments : (segment_id * int list * rid list) list;
      (** id, pages (most recently filled first), live records *)
  fi_free_pages : int list;
  fi_catalog_page : int option;
}

val page_checksum : bytes -> int
(** The checksum {!save_file} stores per page (adler32 of the image). *)

val file_image_of_store : t -> file_image
(** Flush the pool and snapshot the store (checksums freshly computed). *)

val read_file_image : string -> file_image
(** Parse a store file without building a store.
    @raise Failure on a missing or structurally corrupt file. *)

val write_file_image : file_image -> string -> unit
(** Serialize an image (atomically, like {!save_file}).  Checksums are
    written {e verbatim} — the corruption tests rely on being able to
    write an image whose checksums disagree with its pages. *)

val store_of_file_image : ?pool_capacity:int -> file_image -> t

val io_stats : t -> Disk.stats * Buffer_pool.stats

val reset_io_stats : t -> unit
