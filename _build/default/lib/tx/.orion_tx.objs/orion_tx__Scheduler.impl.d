lib/tx/scheduler.ml: Database List Oid Orion_core Orion_locking Tx_manager
