(* One shard of the reactor: its own select loop, session table, parked
   transactions and read buffer, all domain-local.  Anything touching
   the shared transactional core (database, lock table, tx ownership)
   runs under the service lock, taken once per tick around the whole
   dispatch batch.  Cross-shard effects travel as [Tx_service.peer_msg]
   through the inbox + wake pipe. *)

module Eval = Orion_dsl.Eval
module Tx = Orion_tx.Tx_manager
module Frame = Orion_protocol.Frame
module Message = Orion_protocol.Message
module Sexp = Orion_util.Sexp
module Omutex = Orion_util.Omutex
module Obs = Orion_obs.Metrics
module Tailer = Orion_replication.Tailer
module Snapshot_read = Orion_mvcc.Snapshot_read
open Orion_core

type addr = Orion_protocol.Addr.t = Tcp of string * int | Unix_path of string

type config = {
  max_sessions : int;
  queue_limit : int;
  idle_timeout : float option;
  lock_timeout : float option;
  metrics_interval : float option;
  domains : int;
  group_commit_window : float option;
  lock_partitions : int;
      (* lock-table partitions, keyed by composite root; [0] (the
         default) means one per domain *)
}

let default_config =
  {
    max_sessions = 64;
    queue_limit = 16;
    idle_timeout = None;
    lock_timeout = Some 30.;
    metrics_interval = None;
    domains = 1;
    group_commit_window = None;
    lock_partitions = 0;
  }

type session = {
  sid : int;
  fd : Unix.file_descr;
  splitter : Frame.Splitter.t;
  queue : Message.request Queue.t;  (* decoded, not yet processed *)
  out : Bytes.t Queue.t;  (* framed replies awaiting the socket *)
  mutable out_off : int;  (* consumed prefix of [Queue.peek out] *)
  mutable greeted : bool;
  mutable tx : Tx.tx option;
  mutable snap : Tx.snapshot_tx option;
      (* open read-only snapshot: Components_of/Ancestors_of/Read_attr
         resolve against the version store at its begin clock, without
         a single lock-table entry.  Mutually exclusive with [tx]. *)
  mutable committing : Tx.tx option;
      (* submitted to the group committer; the session is gated (no
         further requests dispatch) until [Commit_done] settles it *)
  mutable parked_req : Message.request option;
  mutable parked_since : float;
  mutable deadlock_note : string option;
      (* the transaction was aborted as a deadlock victim while the
         session was not parked; the next transactional request is
         answered [Conflict] instead of [Bad_request] *)
  mutable last_activity : float;
  mutable closing : bool;  (* flush [out], then close *)
  mutable repl_sub : int option;
      (* tailer subscription: the session is a replica consuming this
         primary's WAL stream *)
}

type phase = Running | Draining of float (* deadline *) | Killed

type t = {
  idx : int;
  config : config;
  svc : Tx_service.t;
  listen : Unix.file_descr option;
      (* with one domain the shard owns the listener; with several the
         supervisor's acceptor loop owns it and hands sessions over *)
  owned_addr : addr option;  (* bound address, when the listener is ours *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  inbox_mu : Omutex.t;
  inbox : Tx_service.peer_msg Queue.t;
  sessions : (int, session) Hashtbl.t;
  n_sessions : int Atomic.t;  (* shared with acceptor + stats readers *)
  n_parked : int Atomic.t;
  read_buf : Bytes.t;
  mutable total_sessions : unit -> int;  (* across shards, for admission *)
  mutable phase : phase;
  mutable drain_pending : bool;
  mutable was_killed : bool;
}

let create ~idx ~config ~svc ?listen ?owned_addr () =
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  let t =
    {
      idx;
      config;
      svc;
      listen;
      owned_addr;
      wake_r;
      wake_w;
      inbox_mu = Omutex.create ~inst:idx Omutex.shard_inbox;
      inbox = Queue.create ();
      sessions = Hashtbl.create 32;
      n_sessions = Atomic.make 0;
      n_parked = Atomic.make 0;
      read_buf = Bytes.create 65536;
      total_sessions = (fun () -> 0);
      phase = Running;
      drain_pending = false;
      was_killed = false;
    }
  in
  t.total_sessions <- (fun () -> Atomic.get t.n_sessions);
  t

let set_total_sessions t f = t.total_sessions <- f
let session_count t = Atomic.get t.n_sessions

(* The acceptor counts a connection against its target shard at accept
   time, before the [New_session] handoff lands, so admission control
   never over-admits past [max_sessions] on a slow shard. *)
let note_incoming t = Atomic.incr t.n_sessions
let parked_count t = Atomic.get t.n_parked
let killed t = t.was_killed

let wake t byte =
  try ignore (Unix.write t.wake_w (Bytes.make 1 byte) 0 1 : int)
  with Unix.Unix_error _ -> ()

let enqueue t msg =
  Omutex.lock t.inbox_mu;
  Queue.push msg t.inbox;
  Omutex.unlock t.inbox_mu;
  wake t 'M'

(* [stop]/[kill] bytes bypass the inbox: a signal handler must not take
   the inbox mutex (it could interrupt the owner mid-enqueue). *)
let request_stop t = wake t 'G'
let request_kill t = wake t 'K'

let take_inbox t =
  Omutex.lock t.inbox_mu;
  let msgs = List.of_seq (Queue.to_seq t.inbox) in
  Queue.clear t.inbox;
  Omutex.unlock t.inbox_mu;
  msgs

(* The true gauge: how many sessions are parked right now (the
   lifetime [parks] counter only ever grows). *)
let parked_sessions t =
  Hashtbl.fold
    (fun _ s n -> if s.parked_req <> None then n + 1 else n)
    t.sessions 0

(* Outbound ------------------------------------------------------------------- *)

let send session msg =
  Queue.push (Frame.encode (Message.encode_server msg)) session.out

let reply session r = send session (Message.Reply r)
let push session p = send session (Message.Push p)

let error session code msg = reply session (Message.Error { code; msg })

let flush_out session =
  (* Write as much of the pending frames as the socket accepts.  A
     declared blocking point: sockets are non-blocking, but a write is
     still a syscall a no-block lock holder has no business waiting
     on. *)
  Omutex.blocking ~op:"socket.write" @@ fun () ->
  let progress = ref true in
  while !progress && not (Queue.is_empty session.out) do
    let head = Queue.peek session.out in
    let remaining = Bytes.length head - session.out_off in
    match Unix.write session.fd head session.out_off remaining with
    | written ->
        if written = remaining then begin
          ignore (Queue.pop session.out : Bytes.t);
          session.out_off <- 0
        end
        else begin
          session.out_off <- session.out_off + written;
          progress := false
        end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        progress := false
    | exception Unix.Unix_error _ ->
        (* EPIPE/ECONNRESET and kin (SIGPIPE is ignored, so a write to
           a vanished peer surfaces here): the pending output is
           undeliverable.  Drop it and mark the session closing; the
           reactor then destroys it — aborting its transaction — the
           same way {!feed} handles read-side death. *)
        Queue.clear session.out;
        session.out_off <- 0;
        session.closing <- true
  done

(* Session lifecycle ----------------------------------------------------------- *)

(* A park just ended (grant, conflict, deadlock abort or timeout):
   record how long the session waited for its lock — in the total
   histogram, and in a per-class one ([lock.wait_seconds{class=C}])
   when the parked request's target still resolves to a class (the
   holder may have deleted it, in which case only the total sees the
   wait). *)
let parked_class t session =
  match session.parked_req with
  | Some (Message.Lock_composite { root = oid; _ })
  | Some (Message.Lock_instance { oid; _ })
  | Some (Message.Components_of oid)
  | Some (Message.Ancestors_of oid)
  | Some (Message.Read_attr { oid; _ }) ->
      Option.map (fun i -> i.Instance.cls) (Database.find t.svc.Tx_service.db oid)
  | _ -> None

let observe_wait t session =
  let elapsed = Unix.gettimeofday () -. session.parked_since in
  Obs.observe t.svc.Tx_service.lock_wait_hist elapsed;
  match parked_class t session with
  | None -> ()
  | Some cls -> Obs.observe (Tx_service.class_wait_hist t.svc cls) elapsed

(* Everything from here to the end of [handle] runs with the service
   lock held (the per-tick dispatch batch). *)

let rec destroy t session =
  if Hashtbl.mem t.sessions session.sid then begin
    Hashtbl.remove t.sessions session.sid;
    Atomic.decr t.n_sessions
  end;
  (match session.repl_sub with
  | Some id ->
      session.repl_sub <- None;
      (match t.svc.Tx_service.repl with
      | Tx_service.Primary tailer -> Tailer.unsubscribe tailer id
      | Tx_service.Standalone | Tx_service.Replica_of _ -> ())
  | None -> ());
  (match session.tx with
  | Some tx ->
      session.tx <- None;
      Tx_service.disown t.svc ~tx_id:(Tx.tx_id tx);
      resume t (Tx.abort t.svc.Tx_service.manager tx)
  | None -> ());
  (match session.snap with
  | Some snap ->
      session.snap <- None;
      Tx.end_snapshot t.svc.Tx_service.manager snap
  | None -> ());
  (* A commit in flight with the group committer is past the point of
     no return: [Commit_done] finishes the transaction (releasing its
     locks) whether or not the session is still here to be told. *)
  (try Unix.close session.fd with Unix.Unix_error _ -> ())

(* Wake every parked session whose transaction the lock table just
   unblocked.  Transactions owned by this shard are re-polled inline; a
   [Resume] message carries the rest to their home shards. *)
and resume t tx_ids =
  let foreign : (int, int list) Hashtbl.t = Hashtbl.create 4 in
  let mine =
    List.filter_map
      (fun tx_id ->
        match Tx_service.owner t.svc ~tx_id with
        | None -> None
        | Some (shard, _) when shard = t.idx -> Some tx_id
        | Some (shard, _) ->
            Hashtbl.replace foreign shard
              (tx_id :: Option.value (Hashtbl.find_opt foreign shard) ~default:[]);
            None)
      tx_ids
  in
  Hashtbl.iter
    (fun shard ids -> Tx_service.post t.svc ~shard (Tx_service.Resume ids))
    foreign;
  List.iter (resume_one t) mine

and resume_one t tx_id =
  match Tx_service.owner t.svc ~tx_id with
  | None -> ()
  | Some (_, sid) -> (
      match Hashtbl.find_opt t.sessions sid with
      | None -> ()
      | Some session -> (
          match session.parked_req with
          | None -> ()
          | Some req -> (
              match retry_lock t session req with
              | `Granted ->
                  observe_wait t session;
                  session.parked_req <- None;
                  (match answer_granted t session req with
                  | () -> ()
                  | exception Core_error.Error e ->
                      (* The locks came through but the read's target
                         vanished before they did (deleted by the very
                         holder we waited out). *)
                      error session Message.Eval_error
                        (Format.asprintf "%a" Core_error.pp e));
                  pump t session
              | `Blocked ->
                  (* Still waiting, now on a later lock of the set: a
                     fresh wait-for edge.  The partition's generation
                     counter recorded it inside [acquire]; the next
                     tick's [deadlock_check_due] sees it. *)
                  ()
              | exception Core_error.Error e ->
                  (* The lock target vanished while the session was
                     parked (the holder deleted it and committed),
                     so the lock set can no longer be re-derived.
                     The transaction is still [Blocked] and could
                     never commit: abort it and answer the parked
                     request with the conflict. *)
                  observe_wait t session;
                  session.parked_req <- None;
                  let note =
                    Format.asprintf "%a; transaction aborted" Core_error.pp e
                  in
                  (match session.tx with
                  | Some tx ->
                      session.tx <- None;
                      Tx_service.disown t.svc ~tx_id:(Tx.tx_id tx);
                      let unblocked = Tx.abort t.svc.Tx_service.manager tx in
                      error session Message.Conflict note;
                      resume t unblocked
                  | None -> error session Message.Conflict note);
                  pump t session)))

and retry_lock t session req =
  match (session.tx, req) with
  | Some tx, Message.Lock_composite { root; access } ->
      Tx.lock_composite t.svc.Tx_service.manager tx ~root (protocol_access access)
  | Some tx, Message.Lock_instance { oid; access } ->
      Tx.lock_instance t.svc.Tx_service.manager tx oid (protocol_access access)
  (* Live reads inside a transaction lock what they read (the §7 read
     protocols), so they serialize against concurrent composite
     updates instead of racing them.  Re-derivation on retry is sound:
     mutations only run under the core lock, which the whole dispatch
     batch holds. *)
  | Some tx, Message.Components_of root ->
      Tx.lock_composite t.svc.Tx_service.manager tx ~root
        Orion_locking.Protocol.Read_
  | Some tx, Message.Read_attr { oid; _ } ->
      Tx.lock_instance t.svc.Tx_service.manager tx oid
        Orion_locking.Protocol.Read_
  | Some tx, Message.Ancestors_of oid -> lock_ancestor_path t tx oid
  | _ -> `Granted

(* [ancestors-of] reads the upward path, not a composite subtree: lock
   the instance itself, then every ancestor on the path.  Strict 2PL
   keeps the prefix granted across a park; the retry re-derives the
   path and re-requests (already-held locks grant immediately). *)
and lock_ancestor_path t tx oid =
  let manager = t.svc.Tx_service.manager in
  match Tx.lock_instance manager tx oid Orion_locking.Protocol.Read_ with
  | `Blocked -> `Blocked
  | `Granted ->
      let rec go = function
        | [] -> `Granted
        | a :: rest -> (
            match Tx.lock_instance manager tx a Orion_locking.Protocol.Read_ with
            | `Granted -> go rest
            | `Blocked -> `Blocked)
      in
      go (Traversal.ancestors_of t.svc.Tx_service.db oid)

(* Answer a request whose locks are (now) granted: lock requests get
   [Granted], transactional live reads get their result, read off the
   live database under the locks just taken. *)
and answer_granted t session req =
  let db = t.svc.Tx_service.db in
  match req with
  | Message.Components_of root ->
      reply session (Message.Result (Message.Objs (Traversal.components_of db root)))
  | Message.Ancestors_of root ->
      reply session (Message.Result (Message.Objs (Traversal.ancestors_of db root)))
  | Message.Read_attr { oid; attr } ->
      let v =
        Option.value ~default:Value.Null (Instance.attr (Database.get db oid) attr)
      in
      reply session (Message.Result (Message.Value v))
  | _ -> reply session Message.Granted

and protocol_access = function
  | Message.Read -> Orion_locking.Protocol.Read_
  | Message.Update -> Orion_locking.Protocol.Update

(* Decode buffered frames into the request queue, up to the bound.
   Frames beyond it stay in the splitter; {!pump} refills as the queue
   drains, so a pipelined burst never stalls even if the client goes
   quiet (the reactor only gets read events for {e new} bytes). *)
and refill t session =
  match
    while Queue.length session.queue < t.config.queue_limit do
      match Frame.Splitter.next session.splitter with
      | Some payload -> Queue.push (Message.decode_request payload) session.queue
      | None -> raise Exit
    done
  with
  | () -> ()
  | exception Exit -> ()
  | exception Frame.Corrupt msg
  | exception Orion_storage.Bytes_rw.Reader.Corrupt msg ->
      error session Message.Bad_request ("protocol error: " ^ msg);
      session.closing <- true

(* Process a session's decoded requests until it parks, closes, gates
   on an in-flight group commit, or runs dry. *)
and pump t session =
  if
    (not session.closing)
    && session.parked_req = None
    && session.committing = None
  then begin
    if Queue.is_empty session.queue then refill t session;
    if (not session.closing) && not (Queue.is_empty session.queue) then begin
      let req = Queue.pop session.queue in
      Obs.incr t.svc.Tx_service.requests;
      Obs.Span.time ~histogram:t.svc.Tx_service.dispatch_hist "server.dispatch"
        (fun () -> handle t session req);
      pump t session
    end
  end

and handle t session req =
  let svc = t.svc in
  let manager = svc.Tx_service.manager in
  let v_of_eval : Eval.v -> Message.v = function
    | Eval.Obj oid -> Message.Obj oid
    | Eval.Objs oids -> Message.Objs oids
    | Eval.Bool b -> Message.Bool b
    | Eval.Num n -> Message.Num n
    | Eval.Str s -> Message.Str s
    | Eval.Unit -> Message.Unit
  in
  (* Another shard's deadlock breaker may have aborted our transaction
     between ticks (the [Victim] message can still be in flight): the
     handle in [session.tx] is then already finished.  Detect it here
     so no branch below operates on a dead transaction. *)
  (match session.tx with
  | Some tx
    when (match Tx.state tx with
         | Tx.Committed | Tx.Aborted -> true
         | Tx.Active | Tx.Blocked | Tx.Committing -> false) ->
      session.tx <- None;
      if session.deadlock_note = None then
        session.deadlock_note <- Some "transaction aborted as deadlock victim"
  | _ -> ());
  (* A session whose transaction was sacrificed to a deadlock while it
     was between requests learns about it on its next transactional
     request. *)
  let conflict_or code msg =
    match session.deadlock_note with
    | Some note ->
        session.deadlock_note <- None;
        error session Message.Conflict note
    | None -> error session code msg
  in
  match req with
  | Message.Hello { version; client = _ } ->
      if version <> Message.version then begin
        error session Message.Unsupported_version
          (Printf.sprintf "server speaks version %d, client sent %d"
             Message.version version);
        session.closing <- true
      end
      else begin
        session.greeted <- true;
        reply session (Message.Welcome { version = Message.version; session = session.sid })
      end
  | _ when not session.greeted ->
      error session Message.Bad_request "first request must be hello";
      session.closing <- true
  | ( Message.Begin | Message.Commit | Message.Abort
    | Message.Lock_composite _ | Message.Lock_instance _ | Message.Make _ )
    when svc.Tx_service.read_only ->
      (* Evaluated mutations and DDL are refused one layer down (the
         replica's mutator and DDL gate); the typed write requests are
         refused here at dispatch. *)
      error session Message.Read_only
        "read-only replica: write on the primary, or promote this node"
  | Message.Eval src -> (
      match Sexp.parse_many src with
      | exception Sexp.Parse_error msg -> error session Message.Parse_error msg
      | forms -> (
          (* Inside a transaction, evaluated object mutations must be
             transactional like the typed requests — undo on abort,
             after-images at commit — so route them through the
             manager for the duration of the eval.  Dispatch holds the
             service lock: no other session can observe the swap. *)
          let ambient_mutator = Eval.mutator svc.Tx_service.env in
          (match session.tx with
          | None -> ()
          | Some tx ->
              Eval.set_mutator svc.Tx_service.env
                (Some
                   {
                     Eval.m_create =
                       (fun ~cls ~parents ~attrs ->
                         Tx.create_object manager tx ~cls ~parents ~attrs ());
                     m_write_attr =
                       (fun oid attr v -> Tx.write_attr manager tx oid attr v);
                     m_make_component =
                       (fun ~parent ~attr ~child ->
                         Tx.make_component manager tx ~parent ~attr ~child);
                     m_remove_component =
                       (fun ~parent ~attr ~child ->
                         Tx.remove_component manager tx ~parent ~attr ~child);
                     m_delete = (fun oid -> Tx.delete_object manager tx oid);
                   }));
          match
            Fun.protect
              ~finally:(fun () ->
                Eval.set_mutator svc.Tx_service.env ambient_mutator)
              (fun () ->
                List.fold_left
                  (fun _ form -> Eval.eval svc.Tx_service.env form)
                  Eval.Unit forms)
          with
          | result -> reply session (Message.Result (v_of_eval result))
          | exception Eval.Eval_error msg -> error session Message.Eval_error msg
          | exception Core_error.Error e ->
              error session Message.Eval_error (Format.asprintf "%a" Core_error.pp e)
          | exception Orion_schema.Schema.Error e ->
              error session Message.Eval_error
                (Format.asprintf "%a" Orion_schema.Schema.pp_error e)))
  | Message.Begin -> (
      match (session.tx, session.snap) with
      | Some tx, _ ->
          error session Message.Bad_request
            (Printf.sprintf "transaction %d already open" (Tx.tx_id tx))
      | None, Some _ ->
          error session Message.Bad_request
            "snapshot open on this session (end-snapshot first)"
      | None, None ->
          let tx = Tx.begin_tx manager in
          session.tx <- Some tx;
          session.deadlock_note <- None;
          Tx_service.claim svc ~tx_id:(Tx.tx_id tx) ~shard:t.idx ~sid:session.sid;
          reply session (Message.Result (Message.Num (Tx.tx_id tx))))
  | Message.Commit -> (
      match session.tx with
      | None -> conflict_or Message.Bad_request "no open transaction"
      | Some tx -> (
          match svc.Tx_service.gc with
          | Some gc when Tx.state tx = Tx.Active ->
              (* Group commit: capture the after-images, park the
                 transaction in [Committing] (locks stay held across
                 the batch sync — strict 2PL), and gate the session.
                 The reply waits for the committer's verdict; the
                 ownership claim stays until [Commit_done] so
                 checkpoints see the commit as still open. *)
              let records, (next_oid, clock, cc) = Tx.submit_commit manager tx in
              session.tx <- None;
              session.committing <- Some tx;
              let eager = Tx_service.submit_is_eager svc in
              let sid = session.sid and shard = t.idx in
              Orion_wal.Group_commit.submit gc ~tx:(Tx.tx_id tx) ~records
                ~next_oid ~clock ~cc ~eager
                ~notify:(fun ~ok ~err ->
                  Tx_service.post svc ~shard
                    (Tx_service.Commit_done { sid; tx; ok; err }))
          | _ ->
              session.tx <- None;
              Tx_service.disown svc ~tx_id:(Tx.tx_id tx);
              let unblocked = Tx.commit manager tx in
              reply session (Message.Result Message.Unit);
              resume t unblocked))
  | Message.Abort -> (
      match session.tx with
      | None -> (
          match session.deadlock_note with
          | Some _ ->
              (* The deadlock detector already aborted it; the client's
                 abort is its acknowledgement. *)
              session.deadlock_note <- None;
              reply session (Message.Result Message.Unit)
          | None -> error session Message.Bad_request "no open transaction")
      | Some tx ->
          session.tx <- None;
          Tx_service.disown svc ~tx_id:(Tx.tx_id tx);
          let unblocked = Tx.abort manager tx in
          reply session (Message.Result Message.Unit);
          resume t unblocked)
  | Message.Lock_composite _ | Message.Lock_instance _ -> (
      match session.tx with
      | None -> conflict_or Message.Bad_request "lock requires an open transaction"
      | Some _ -> (
          match retry_lock t session req with
          | `Granted -> reply session Message.Granted
          | `Blocked ->
              Obs.incr svc.Tx_service.parks;
              session.parked_req <- Some req;
              session.parked_since <- Unix.gettimeofday ()
          | exception Core_error.Error e ->
              error session Message.Eval_error (Format.asprintf "%a" Core_error.pp e)))
  | Message.Make { cls; parents; attrs } -> (
      match
        match session.tx with
        | Some tx -> Tx.create_object manager tx ~cls ~parents ~attrs ()
        | None -> Object_manager.create svc.Tx_service.db ~cls ~parents ~attrs ()
      with
      | oid -> reply session (Message.Result (Message.Obj oid))
      | exception Core_error.Error e ->
          error session Message.Eval_error (Format.asprintf "%a" Core_error.pp e))
  | Message.Components_of _ | Message.Ancestors_of _ | Message.Read_attr _ -> (
      match (session.snap, session.tx) with
      | Some snap, _ -> (
          (* Snapshot reads: the version store at the begin clock,
             without a single lock-table entry. *)
          match
            match req with
            | Message.Components_of root ->
                Message.Objs
                  (Snapshot_read.components_of (Tx.snapshot_view snap) root)
            | Message.Ancestors_of root ->
                Message.Objs
                  (Snapshot_read.ancestors_of (Tx.snapshot_view snap) root)
            | Message.Read_attr { oid; attr } ->
                Message.Value
                  (Option.value ~default:Value.Null
                     (Snapshot_read.attr (Tx.snapshot_view snap) oid attr))
            | _ -> assert false
          with
          | v -> reply session (Message.Result v)
          | exception Core_error.Error e ->
              error session Message.Eval_error
                (Format.asprintf "%a" Core_error.pp e))
      | None, Some _ -> (
          (* Transactional live read: take the read locks first (the
             same derivation a retry after a park uses), then read the
             live database under them.  Blocking parks the read like a
             lock request — the resume answers it with its result. *)
          match retry_lock t session req with
          | `Granted -> (
              match answer_granted t session req with
              | () -> ()
              | exception Core_error.Error e ->
                  error session Message.Eval_error
                    (Format.asprintf "%a" Core_error.pp e))
          | `Blocked ->
              Obs.incr svc.Tx_service.parks;
              session.parked_req <- Some req;
              session.parked_since <- Unix.gettimeofday ()
          | exception Core_error.Error e ->
              error session Message.Eval_error
                (Format.asprintf "%a" Core_error.pp e))
      | None, None ->
          (* An unlocked, unversioned read of the live database would
             see concurrent writers' uncommitted state.  Refuse rather
             than serve a dirty read. *)
          conflict_or Message.Bad_request
            "read requires an open transaction (begin) or a snapshot \
             (begin-snapshot; the CLI's --snapshot) — refusing a dirty \
             read of the live database")
  | Message.Begin_snapshot -> (
      match (session.tx, session.snap) with
      | Some _, _ ->
          error session Message.Bad_request
            "transaction open on this session (snapshots are lock-free reads; \
             commit or abort first)"
      | None, Some snap ->
          error session Message.Bad_request
            (Printf.sprintf "snapshot already open at clock %d"
               (Tx.snapshot_clock snap))
      | None, None ->
          (* Never refused on a read-only replica: a snapshot takes no
             locks and writes nothing — it reads at the applied clock. *)
          let snap = Tx.begin_snapshot manager in
          session.snap <- Some snap;
          reply session (Message.Result (Message.Num (Tx.snapshot_clock snap))))
  | Message.End_snapshot -> (
      match session.snap with
      | None -> error session Message.Bad_request "no open snapshot"
      | Some snap ->
          session.snap <- None;
          Tx.end_snapshot manager snap;
          reply session (Message.Result Message.Unit))
  | Message.Ping -> reply session Message.Pong
  | Message.Stats -> reply session (Message.Stats_reply (Obs.snapshot ()))
  | Message.Bye ->
      (match session.tx with
      | Some tx ->
          session.tx <- None;
          Tx_service.disown svc ~tx_id:(Tx.tx_id tx);
          resume t (Tx.abort manager tx)
      | None -> ());
      (match session.snap with
      | Some snap ->
          session.snap <- None;
          Tx.end_snapshot manager snap
      | None -> ());
      reply session (Message.Result Message.Unit);
      session.closing <- true
  | Message.Repl_subscribe { from_lsn } -> (
      match svc.Tx_service.repl with
      | Tx_service.Primary tailer ->
          if session.repl_sub <> None then
            error session Message.Repl_error "session already subscribed"
          else (
            match Tailer.subscribe tailer ~from_lsn with
            | Ok (id, durable) ->
                session.repl_sub <- Some id;
                reply session (Message.Repl_ok { lsn = durable })
            | Error msg -> error session Message.Repl_error msg)
      | Tx_service.Standalone ->
          error session Message.Repl_error
            "not a streaming primary (start with --repl)"
      | Tx_service.Replica_of _ ->
          error session Message.Repl_error
            "this node is a replica; subscribe to its primary")
  | Message.Repl_ack { lsn } -> (
      (* The protocol's one no-reply request: answering would desync
         the replica's in-order reply bookkeeping. *)
      match (svc.Tx_service.repl, session.repl_sub) with
      | Tx_service.Primary tailer, Some id -> Tailer.ack tailer id ~lsn
      | _ -> ())
  | Message.Promote -> (
      match Tx_service.promote svc with
      | Ok () ->
          prerr_endline
            (Printf.sprintf "orion: session %d promoted this replica to primary"
               session.sid);
          reply session (Message.Result Message.Unit)
      | Error msg -> error session Message.Repl_error msg)

(* Cross-shard messages --------------------------------------------------------- *)

let handle_commit_done t ~sid ~tx ~ok ~err =
  let svc = t.svc in
  Tx_service.disown svc ~tx_id:(Tx.tx_id tx);
  let unblocked =
    if ok then Tx.complete_commit svc.Tx_service.manager tx
    else Tx.commit_failed svc.Tx_service.manager tx
  in
  (match Hashtbl.find_opt t.sessions sid with
  | Some session
    when (match session.committing with
         | Some tx' -> Tx.tx_id tx' = Tx.tx_id tx
         | None -> false) ->
      session.committing <- None;
      if ok then reply session (Message.Result Message.Unit)
      else
        error session Message.Conflict
          ("commit failed: " ^ err ^ "; transaction aborted");
      resume t unblocked;
      pump t session
  | Some _ | None ->
      (* The session died while its commit was in flight; the
         transaction still had to be finished (its locks freed). *)
      resume t unblocked)

let handle_victim t ~sid ~tx_id ~msg =
  match Hashtbl.find_opt t.sessions sid with
  | None -> ()
  | Some session -> (
      match session.tx with
      | Some tx when Tx.tx_id tx = tx_id ->
          session.tx <- None;
          push session (Message.Deadlock_victim { tx = tx_id; msg });
          (if session.parked_req <> None then begin
             (* The parked lock request dies with the transaction:
                answer it with the conflict. *)
             observe_wait t session;
             session.parked_req <- None;
             error session Message.Conflict msg
           end
           else session.deadlock_note <- Some msg);
          pump t session
      | Some _ | None ->
          (* The session noticed the foreign abort on its own (the
             guard in [handle]) or has already moved on; refresh the
             placeholder note with the real cycle report. *)
          if session.deadlock_note <> None then begin
            session.deadlock_note <- Some msg;
            push session (Message.Deadlock_victim { tx = tx_id; msg })
          end)

let add_session t ~sid ~fd =
  if t.phase <> Running then begin
    (* A stop raced the acceptor's handoff: refuse like a drain would. *)
    Atomic.decr t.n_sessions;
    (try Unix.close fd with Unix.Unix_error _ -> ())
  end
  else
    Hashtbl.replace t.sessions sid
      {
        sid;
        fd;
        splitter = Frame.Splitter.create ();
        queue = Queue.create ();
        out = Queue.create ();
        out_off = 0;
        greeted = false;
        tx = None;
        snap = None;
        committing = None;
        parked_req = None;
        parked_since = 0.;
        deadlock_note = None;
        last_activity = Unix.gettimeofday ();
        closing = false;
        repl_sub = None;
      }

let process_msg t (msg : Tx_service.peer_msg) =
  match msg with
  | Tx_service.New_session { sid; fd } -> add_session t ~sid ~fd
  | Tx_service.Resume ids -> resume t ids
  | Tx_service.Victim { sid; tx_id; msg } -> handle_victim t ~sid ~tx_id ~msg
  | Tx_service.Commit_done { sid; tx; ok; err } ->
      handle_commit_done t ~sid ~tx ~ok ~err

(* Deadlock resolution --------------------------------------------------------- *)

let break_deadlocks t =
  let svc = t.svc in
  let manager = svc.Tx_service.manager in
  let rec go () =
    match Tx.find_deadlock manager with
    | None -> ()
    | Some cycle ->
        (* Abort the youngest transaction in the cycle (the same victim
           policy as the in-process Scheduler). *)
        let victim = List.fold_left max min_int cycle in
        Obs.incr svc.Tx_service.deadlock_victims;
        let msg =
          Format.asprintf "transaction %d aborted to break deadlock cycle [%a]"
            victim
            (Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " -> ")
               Format.pp_print_int)
            cycle
        in
        (* A victim with no live owning session must still be aborted
           through the manager: merely forgetting its id would leave
           its locks (and any queued request) in the table, and
           find_deadlock would return the same cycle forever. *)
        let abort_orphan () =
          Tx_service.disown svc ~tx_id:victim;
          resume t (Tx.abort_id manager victim)
        in
        (match Tx_service.owner svc ~tx_id:victim with
        | None -> abort_orphan ()
        | Some (shard, sid) when shard <> t.idx ->
            (* The victim lives on another shard.  Abort it here — the
               lock table frees its waiters immediately, under this
               same lock hold — and send the bad news home.  [Victim]
               is posted before any [Resume] so the owner shard always
               clears the session before re-polling anything. *)
            Tx_service.disown svc ~tx_id:victim;
            Tx_service.post svc ~shard (Tx_service.Victim { sid; tx_id = victim; msg });
            resume t (Tx.abort_id manager victim)
        | Some (_, sid) -> (
            match Hashtbl.find_opt t.sessions sid with
            | None -> abort_orphan ()
            | Some session ->
                (match session.tx with
                | Some tx when Tx.tx_id tx = victim ->
                    session.tx <- None;
                    Tx_service.disown svc ~tx_id:victim;
                    push session (Message.Deadlock_victim { tx = victim; msg });
                    (if session.parked_req <> None then begin
                       (* The parked lock request dies with the
                          transaction: answer it with the conflict. *)
                       observe_wait t session;
                       session.parked_req <- None;
                       error session Message.Conflict msg
                     end
                     else session.deadlock_note <- Some msg);
                    let unblocked = Tx.abort manager tx in
                    resume t unblocked;
                    pump t session
                | Some _ | None -> abort_orphan ())));
        go ()
  in
  go ()

(* Timeouts -------------------------------------------------------------------- *)

let enforce_timeouts t now =
  let expired = ref [] in
  Hashtbl.iter
    (fun _ session ->
      match t.config.lock_timeout with
      | Some limit
        when session.parked_req <> None && now -. session.parked_since > limit ->
          expired := (`Lock, session) :: !expired
      | _ -> (
          match t.config.idle_timeout with
          | Some limit
            when (not session.closing)
                 && session.parked_req = None
                 && now -. session.last_activity > limit ->
              expired := (`Idle, session) :: !expired
          | _ -> ()))
    t.sessions;
  List.iter
    (fun (kind, session) ->
      match kind with
      | `Lock ->
          (* Cancel the whole transaction: aborting dequeues the pending
             lock request (see Tx_manager.abort), so the queue holds no
             orphan waiter. *)
          Obs.incr t.svc.Tx_service.lock_timeouts;
          observe_wait t session;
          session.parked_req <- None;
          (match session.tx with
          | Some tx ->
              session.tx <- None;
              Tx_service.disown t.svc ~tx_id:(Tx.tx_id tx);
              let unblocked = Tx.abort t.svc.Tx_service.manager tx in
              error session Message.Timeout "lock wait timed out; transaction aborted";
              resume t unblocked
          | None -> error session Message.Timeout "lock wait timed out");
          pump t session
      | `Idle ->
          Obs.incr t.svc.Tx_service.idle_closes;
          push session (Message.Goodbye { msg = "idle timeout" });
          session.closing <- true)
    !expired

(* Accept (single-domain mode: the shard owns the listener) ---------------------- *)

let refuse_full fd ~max_sessions ~rejected =
  Obs.incr rejected;
  (* Best effort: tell the client why before closing. *)
  let frame =
    Frame.encode
      (Message.encode_server
         (Message.Reply
            (Message.Error
               {
                 code = Message.Too_many_sessions;
                 msg = Printf.sprintf "server full (%d sessions)" max_sessions;
               })))
  in
  (try ignore (Unix.write fd frame 0 (Bytes.length frame) : int)
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept t listen_fd =
  match Unix.accept listen_fd with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    -> ()
  | fd, _peer ->
      Unix.set_nonblock fd;
      if t.total_sessions () >= t.config.max_sessions then
        refuse_full fd ~max_sessions:t.config.max_sessions
          ~rejected:t.svc.Tx_service.rejected
      else begin
        Obs.incr t.svc.Tx_service.accepted;
        let sid = Tx_service.fresh_sid t.svc in
        Atomic.incr t.n_sessions;
        add_session t ~sid ~fd
      end

(* Inbound --------------------------------------------------------------------- *)

let feed t session =
  match Unix.read session.fd t.read_buf 0 (Bytes.length t.read_buf) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    -> ()
  | exception Unix.Unix_error _ ->
      (* ECONNRESET/EPIPE, but also ETIMEDOUT (keepalive on a dead
         peer) and other socket errors: the peer is unreachable.  Drop
         any undeliverable output; the end-of-tick sweep destroys the
         session (aborting its transaction) under the service lock. *)
      Queue.clear session.out;
      session.out_off <- 0;
      session.closing <- true
  | 0 ->
      Queue.clear session.out;
      session.out_off <- 0;
      session.closing <- true
  | n ->
      session.last_activity <- Unix.gettimeofday ();
      Frame.Splitter.feed session.splitter t.read_buf ~len:n;
      (* Decode up to the queue bound; leftover frames stay buffered in
         the splitter and the socket stops being selected for reads
         until the queue drains (backpressure). *)
      refill t session

(* Shutdown -------------------------------------------------------------------- *)

let drain_grace = 5.0

let begin_drain t =
  if t.phase = Running then begin
    t.phase <- Draining (Unix.gettimeofday () +. drain_grace);
    (match t.listen with
    | Some fd -> (
        (try Unix.close fd with Unix.Unix_error _ -> ());
        (* A graceful exit leaves no stale socket file; a [kill] does,
           like a real crash would. *)
        match t.owned_addr with
        | Some (Unix_path path) -> ( try Sys.remove path with Sys_error _ -> ())
        | Some (Tcp _) | None -> ())
    | None -> ());
    Hashtbl.iter
      (fun _ session ->
        push session (Message.Goodbye { msg = "server shutting down" });
        (match session.tx with
        | Some tx ->
            session.tx <- None;
            Tx_service.disown t.svc ~tx_id:(Tx.tx_id tx);
            ignore (Tx.abort t.svc.Tx_service.manager tx : int list)
        | None -> ());
        session.parked_req <- None;
        session.closing <- true)
      t.sessions
  end

let drain_wake t =
  let b = Bytes.create 64 in
  let rec go () =
    match Unix.read t.wake_r b 0 64 with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()
    | 0 -> ()
    | n ->
        for i = 0 to n - 1 do
          match Bytes.get b i with
          | 'K' ->
              t.phase <- Killed;
              t.was_killed <- true
          | 'G' -> t.drain_pending <- true
          | _ -> ()
        done;
        go ()
  in
  go ()

(* The reactor tick loop -------------------------------------------------------- *)

let run t =
  let finished = ref false in
  let next_metrics =
    ref
      (match t.config.metrics_interval with
      | Some interval -> Unix.gettimeofday () +. interval
      | None -> infinity)
  in
  while not !finished do
    let now = Unix.gettimeofday () in
    (match t.config.metrics_interval with
    | Some interval when t.idx = 0 && now >= !next_metrics ->
        prerr_endline ("orion metrics: " ^ Obs.one_line (Obs.snapshot ()));
        next_metrics := now +. interval
    | _ -> ());
    (match t.phase with
    | Draining deadline when now > deadline || Hashtbl.length t.sessions = 0 ->
        (* Grace expired or everyone is gone: close what remains. *)
        let remaining = Hashtbl.fold (fun _ s acc -> s :: acc) t.sessions [] in
        (* Flush outside the service lock (socket writes under it were
           a held-across-blocking violation), then destroy under it —
           the same split the closing-session sweep uses. *)
        List.iter flush_out remaining;
        Tx_service.with_lock t.svc (fun () ->
            List.iter (fun s -> destroy t s) remaining);
        finished := true
    | Killed ->
        (* A kill simulates a crash for transactions — their locks and
           effects die with the process image and recovery replays the
           log — but snapshot pins are pure reader bookkeeping on the
           shared version store: leaking them would block MVCC pruning
           for as long as the process (tests, an embedding supervisor)
           lives on.  End them; abort nothing. *)
        Tx_service.with_lock t.svc (fun () ->
            Hashtbl.iter
              (fun _ s ->
                match s.snap with
                | Some snap ->
                    s.snap <- None;
                    Tx.end_snapshot t.svc.Tx_service.manager snap
                | None -> ())
              t.sessions);
        Hashtbl.iter (fun _ s -> try Unix.close s.fd with Unix.Unix_error _ -> ())
          t.sessions;
        Hashtbl.reset t.sessions;
        Atomic.set t.n_sessions 0;
        (match t.listen with
        | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
        | None -> ());
        finished := true
    | Running | Draining _ -> ());
    if not !finished then begin
      let reads =
        t.wake_r
        :: (match t.listen with
           | Some fd when t.phase = Running -> [ fd ]
           | _ -> [])
        @ Hashtbl.fold
            (fun _ s acc ->
              (* Backpressure: a full request queue or a closing session
                 stops reads. *)
              if (not s.closing) && Queue.length s.queue < t.config.queue_limit then
                s.fd :: acc
              else acc)
            t.sessions []
      in
      let writes =
        Hashtbl.fold
          (fun _ s acc -> if not (Queue.is_empty s.out) then s.fd :: acc else acc)
          t.sessions []
      in
      match
        Omutex.blocking ~op:"unix.select" (fun () ->
            Unix.select reads writes [] 0.1)
      with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | readable, writable, _ ->
          if List.mem t.wake_r readable then drain_wake t;
          let msgs = take_inbox t in
          if t.phase <> Killed then begin
            (match t.listen with
            | Some lfd when t.phase = Running && List.mem lfd readable ->
                accept t lfd
            | _ -> ());
            let session_of fd =
              Hashtbl.fold
                (fun _ s acc -> if s.fd = fd then Some s else acc)
                t.sessions None
            in
            (* Socket reads and frame decoding stay outside the service
               lock; the whole dispatch batch below takes it once. *)
            let fed =
              List.filter_map
                (fun fd ->
                  if fd = t.wake_r || Some fd = t.listen then None
                  else
                    match session_of fd with
                    | Some session ->
                        feed t session;
                        Some session
                    | None -> None)
                readable
            in
            (* Take the core lock only on ticks that have work for it:
               requests to dispatch, peer messages, a drain, a grown
               wait-for edge ([deadlock_check_due] reads the partition
               generations lock-free), a timeout that could have
               expired, or a catalog change awaiting its checkpoint.
               An idle shard's select timeout then costs no core-lock
               traffic at all. *)
            let timeouts_possible =
              (t.config.lock_timeout <> None && parked_sessions t > 0)
              || t.config.idle_timeout <> None
                 && Hashtbl.length t.sessions > 0
            in
            if
              t.drain_pending || msgs <> [] || fed <> []
              || Tx_service.deadlock_check_due t.svc
              || timeouts_possible
              || Tx_service.checkpoint_due t.svc
            then
              Tx_service.with_lock t.svc (fun () ->
                  if t.drain_pending then begin
                    t.drain_pending <- false;
                    begin_drain t
                  end;
                  List.iter (process_msg t) msgs;
                  List.iter
                    (fun s -> if Hashtbl.mem t.sessions s.sid then pump t s)
                    fed;
                  if Tx_service.deadlock_check_due t.svc then break_deadlocks t;
                  enforce_timeouts t (Unix.gettimeofday ());
                  Tx_service.maybe_checkpoint t.svc);
            (* WAL shipping: pump each subscribed session's cursor
               (bounded per tick; the tailer and log carry their own
               mutexes, so this runs outside the service lock) and
               flush immediately — frames are pushes, born outside the
               request/reply cycle, so the socket may not be in this
               tick's writable set yet. *)
            (match t.svc.Tx_service.repl with
            | Tx_service.Primary tailer ->
                Hashtbl.iter
                  (fun _ s ->
                    match s.repl_sub with
                    | Some id when not s.closing ->
                        let budget = ref 8 in
                        let more = ref true in
                        while !more && !budget > 0 do
                          decr budget;
                          match Tailer.pump tailer id with
                          | Tailer.Frames { lsn; data } ->
                              push s (Message.Repl_frames { lsn; data })
                          | Tailer.Heartbeat lsn ->
                              push s (Message.Repl_heartbeat { lsn });
                              more := false
                          | Tailer.Idle -> more := false
                        done;
                        flush_out s
                    | Some _ | None -> ())
                  t.sessions
            | Tx_service.Standalone | Tx_service.Replica_of _ -> ());
            List.iter
              (fun fd ->
                match session_of fd with
                | Some session -> flush_out session
                | None -> ())
              writable;
            (* Close sessions that have said goodbye and flushed. *)
            let done_ =
              Hashtbl.fold
                (fun _ s acc ->
                  if s.closing then begin
                    flush_out s;
                    if Queue.is_empty s.out then s :: acc else acc
                  end
                  else acc)
                t.sessions []
            in
            if done_ <> [] then
              Tx_service.with_lock t.svc (fun () ->
                  List.iter (fun s -> destroy t s) done_);
            Atomic.set t.n_parked (parked_sessions t)
          end
    end
  done;
  Atomic.set t.n_parked 0
