(** Server addresses, shared by {!Orion_server} and {!Orion_client}. *)

type t = Tcp of string * int | Unix_path of string

val pp : Format.formatter -> t -> unit

val parse : string -> t
(** ["host:port"], [":port"] (localhost), a bare port number, or a
    filesystem path (anything containing [/]) as a Unix-domain socket.
    @raise Invalid_argument on none of those. *)

val domain : t -> Unix.socket_domain

val to_sockaddr : t -> Unix.sockaddr
(** Resolves a [Tcp] host name. *)
