type primitive = P_integer | P_float | P_string | P_boolean

type t = Primitive of primitive | Class of string | Any

let equal a b =
  match (a, b) with
  | Primitive x, Primitive y -> x = y
  | Class x, Class y -> String.equal x y
  | Any, Any -> true
  | (Primitive _ | Class _ | Any), _ -> false

let pp ppf = function
  | Primitive P_integer -> Format.pp_print_string ppf "integer"
  | Primitive P_float -> Format.pp_print_string ppf "float"
  | Primitive P_string -> Format.pp_print_string ppf "string"
  | Primitive P_boolean -> Format.pp_print_string ppf "boolean"
  | Class c -> Format.pp_print_string ppf c
  | Any -> Format.pp_print_string ppf "any"

let to_string t = Format.asprintf "%a" pp t

let class_name = function Class c -> Some c | Primitive _ | Any -> None
