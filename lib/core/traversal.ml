module A = Orion_schema.Attribute
module Schema = Orion_schema.Schema
module Obs = Orion_obs.Metrics

(* Traversal is stateless, so one process-wide histogram covers every
   database in the process (unlike per-instance subsystem counters). *)
let components_hist = Obs.histogram "traversal.components_seconds"

type filter = [ `All | `Exclusive | `Shared ]

let default_version db goid =
  match Database.find db goid with
  | None -> None
  | Some inst -> (
      match Instance.generic_info inst with
      | None -> None
      | Some gi -> (
          match gi.user_default with
          | Some v when Database.exists db v -> Some v
          | Some _ | None ->
              (* System default: timestamp order of creation (§5.1). *)
              let latest =
                List.fold_left
                  (fun best v ->
                    match Database.find db v with
                    | None -> best
                    | Some vinst -> (
                        match (Instance.version_info vinst, best) with
                        | Some vi, Some (_, best_at) when vi.created_at <= best_at
                          ->
                            best
                        | Some vi, _ -> Some (v, vi.created_at)
                        | None, _ -> best))
                  None gi.versions
              in
              Option.map fst latest))

let resolve db oid =
  match Database.find db oid with
  | Some inst when Instance.is_generic inst -> (
      match default_version db oid with Some v -> v | None -> oid)
  | Some _ | None -> oid

(* Outgoing composite edges of an instance, dynamic bindings resolved.
   [deps] accumulates every OID the result embeds — the raw reference
   targets plus their resolved forms — for cache dependency tracking. *)
let compute_edges db ?deps (inst : Instance.t) =
  Schema.composite_attributes (Database.schema db) inst.cls
  |> List.concat_map (fun (a : A.t) ->
         match a.refkind with
         | A.Weak -> []
         | A.Composite { exclusive; _ } -> (
             match Instance.attr inst a.name with
             | None -> []
             | Some v ->
                 List.map
                   (fun target ->
                     let resolved = resolve db target in
                     (match deps with
                     | Some acc ->
                         acc := target :: !acc;
                         if not (Oid.equal resolved target) then
                           acc := resolved :: !acc
                     | None -> ());
                     (exclusive, resolved))
                   (Value.refs v)))

let uncached_edges db oid =
  match Database.find db oid with
  | None -> []
  | Some inst -> if Instance.is_generic inst then [] else compute_edges db inst

let cached_edges db cache ~generation oid =
  (* Cache first: a hit skips the object lookup entirely, so a warm
     traversal does one table probe per node instead of one per node
     plus one per edge. *)
  match Edge_cache.find cache ~generation oid with
  | Some edges -> edges
  | None ->
      let deps = ref [] in
      let edges =
        match Database.find db oid with
        | None -> []
        | Some inst ->
            if Instance.is_generic inst then [] else compute_edges db ~deps inst
      in
      Edge_cache.add cache ~generation oid ~deps:!deps edges;
      edges

(* The per-node edge function of a traversal: the cache, the schema
   generation and the representation dispatch are resolved once, not
   per visited node. *)
let edge_fn db =
  match Database.edge_cache db with
  | None -> uncached_edges db
  | Some cache ->
      let generation = Schema.version (Database.schema db) in
      cached_edges db cache ~generation

let edges db oid = edge_fn db oid

(* BFS computing, for every reachable object, the shortest composite
   distance and whether some reaching path contains a shared reference
   (the taint); a component is exclusive iff never tainted (D11). *)
type reach = { mutable dist : int; mutable tainted : bool }

(* The BFS over an arbitrary edge function: the live database supplies
   [edge_fn db]; a snapshot read supplies edges resolved against a
   version store at a fixed commit clock (lib/mvcc). *)
let reachability_via ~edges root =
  let edges_of = edges in
  let info : reach Oid.Tbl.t = Oid.Tbl.create 64 in
  let order = ref [] in
  let queue = Queue.create () in
  Queue.add (root, 0, false) queue;
  while not (Queue.is_empty queue) do
    let oid, dist, tainted = Queue.pop queue in
    let revisit_children =
      match Oid.Tbl.find_opt info oid with
      | None ->
          Oid.Tbl.add info oid { dist; tainted };
          if not (Oid.equal oid root) then order := oid :: !order;
          true
      | Some r ->
          (* Re-propagate only when the taint is news for this node. *)
          let taint_news = tainted && not r.tainted in
          if taint_news then r.tainted <- true;
          taint_news
    in
    if revisit_children then
      List.iter
        (fun (exclusive, child) ->
          Queue.add (child, dist + 1, tainted || not exclusive) queue)
        (edges_of oid)
  done;
  (info, List.rev !order)

let reachability db root = reachability_via ~edges:(edge_fn db) root

let matches_classes db classes oid =
  match classes with
  | None -> true
  | Some cls_list -> (
      match Database.find db oid with
      | None -> false
      | Some inst ->
          List.exists
            (fun cls ->
              Schema.mem (Database.schema db) cls
              && Schema.is_subclass_of (Database.schema db) ~sub:inst.cls ~super:cls)
            cls_list)

let matches_filter (filter : filter) tainted =
  match filter with
  | `All -> true
  | `Exclusive -> not tainted
  | `Shared -> tainted

let components_of db ?classes ?level ?(filter = `All) oid =
  Obs.Span.time ~histogram:components_hist "traversal.components" (fun () ->
      ignore (Database.get db oid : Instance.t);
      let info, order = reachability db oid in
      List.filter
        (fun component ->
          match Oid.Tbl.find_opt info component with
          | None -> false
          | Some r ->
              (match level with Some l -> r.dist <= l | None -> true)
              && matches_filter filter r.tainted
              && matches_classes db classes component)
        order)

let children_of db oid =
  ignore (Database.get db oid : Instance.t);
  let seen = Oid.Tbl.create 8 in
  List.filter_map
    (fun (_, child) ->
      if Oid.Tbl.mem seen child then None
      else begin
        Oid.Tbl.add seen child ();
        Some child
      end)
    (edges db oid)

(* Upward edges: (parent, exclusive) pairs. *)
let parent_edges db oid =
  match Database.find db oid with
  | None -> []
  | Some inst -> (
      match Instance.generic_info inst with
      | Some gi -> List.map (fun (g : Rref.gref) -> (g.g_parent, g.g_exclusive)) gi.grefs
      | None ->
          List.map (fun (r : Rref.t) -> (r.parent, r.exclusive)) (Database.rrefs db oid))

let filter_parents db ?classes ~filter pairs =
  let seen = Oid.Tbl.create 8 in
  List.filter_map
    (fun (parent, exclusive) ->
      if Oid.Tbl.mem seen parent then None
      else begin
        Oid.Tbl.add seen parent ();
        if
          matches_filter filter (not exclusive)
          && matches_classes db classes parent
        then Some parent
        else None
      end)
    pairs

let parents_of db ?classes ?(filter = `All) oid =
  ignore (Database.get db oid : Instance.t);
  filter_parents db ?classes ~filter (parent_edges db oid)

(* Upward BFS over an arbitrary parent-edge function, shared with the
   snapshot-read path (lib/mvcc). *)
let ancestors_via ~parent_edges ~filter oid =
  let seen = Oid.Tbl.create 16 in
  let acc = ref [] in
  let queue = Queue.create () in
  let push (parent, exclusive) =
    if matches_filter filter (not exclusive) && not (Oid.Tbl.mem seen parent)
    then begin
      Oid.Tbl.add seen parent ();
      acc := parent :: !acc;
      Queue.add parent queue
    end
  in
  List.iter push (parent_edges oid);
  while not (Queue.is_empty queue) do
    let parent = Queue.pop queue in
    List.iter push (parent_edges parent)
  done;
  List.rev !acc

let ancestors_of db ?classes ?(filter = `All) oid =
  ignore (Database.get db oid : Instance.t);
  List.filter (matches_classes db classes)
    (ancestors_via ~parent_edges:(parent_edges db) ~filter oid)

let component_of db o1 o2 =
  List.exists (Oid.equal o1) (components_of db o2)

let child_of db o1 o2 = List.exists (Oid.equal o1) (children_of db o2)

let exclusive_component_of db o1 o2 =
  List.exists (Oid.equal o1) (components_of db ~filter:`Exclusive o2)

let shared_component_of db o1 o2 =
  List.exists (Oid.equal o1) (components_of db ~filter:`Shared o2)
