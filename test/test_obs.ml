(* Tests for Orion_obs.Metrics: registry semantics (replace on name
   collision), counters/gauges, histogram quantile estimates, span
   nesting with the slow-op sink, and the Stats_reply wire codec. *)

module Obs = Orion_obs.Metrics
module Message = Orion_protocol.Message

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_counters_and_gauges () =
  let registry = Obs.create_registry () in
  let c = Obs.counter ~registry "t.count" in
  Obs.incr c;
  Obs.incr c ~by:4;
  Alcotest.(check int) "value" 5 (Obs.counter_value c);
  let live = ref 7 in
  Obs.gauge ~registry "t.gauge" (fun () -> !live);
  let snap = Obs.snapshot ~registry () in
  Alcotest.(check (option int)) "counter in snapshot" (Some 5)
    (Obs.find_counter snap "t.count");
  Alcotest.(check (option int)) "gauge read at snapshot time" (Some 7)
    (Obs.find_gauge snap "t.gauge");
  live := 3;
  Alcotest.(check (option int)) "gauge is a live callback" (Some 3)
    (Obs.find_gauge (Obs.snapshot ~registry ()) "t.gauge");
  Obs.reset_counter c;
  Alcotest.(check int) "reset" 0 (Obs.counter_value c)

(* A second instrument under a taken name re-points the registration;
   the first owner keeps its private state. *)
let test_registry_replaces_on_collision () =
  let registry = Obs.create_registry () in
  let old = Obs.counter ~registry "t.count" in
  Obs.incr old ~by:10;
  let fresh = Obs.counter ~registry "t.count" in
  Obs.incr fresh ~by:2;
  Alcotest.(check (option int)) "snapshot reads the newest instance" (Some 2)
    (Obs.find_counter (Obs.snapshot ~registry ()) "t.count");
  Alcotest.(check int) "old owner's private view intact" 10
    (Obs.counter_value old);
  Alcotest.(check int) "only one registration survives" 1
    (List.length (Obs.snapshot ~registry ()).Obs.counters)

let test_histogram_quantiles () =
  let registry = Obs.create_registry () in
  let h = Obs.histogram ~registry "t.seconds" in
  (* 90 fast ops at ~1ms, 10 slow ones at ~1s. *)
  for _ = 1 to 90 do
    Obs.observe h 0.001
  done;
  for _ = 1 to 10 do
    Obs.observe h 1.0
  done;
  Alcotest.(check int) "count" 100 (Obs.histogram_count h);
  match Obs.find_histogram (Obs.snapshot ~registry ()) "t.seconds" with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some s ->
      Alcotest.(check int) "summary count" 100 s.Obs.count;
      Alcotest.(check bool) "sum ~ 10.09s" true (s.Obs.sum > 10.0 && s.Obs.sum < 10.2);
      Alcotest.(check bool) "max >= 1s" true (s.Obs.max >= 1.0);
      (* Bucket-estimated quantiles: p50 lands in a ~1ms bucket, p95
         and p99 in a >= 1s bucket. *)
      Alcotest.(check bool) "p50 is fast" true (s.Obs.p50 < 0.01);
      Alcotest.(check bool) "p95 is slow" true (s.Obs.p95 >= 1.0);
      Alcotest.(check bool) "p99 >= p95 >= p50" true
        (s.Obs.p99 >= s.Obs.p95 && s.Obs.p95 >= s.Obs.p50);
      Obs.reset_histogram h;
      Alcotest.(check int) "reset" 0 (Obs.histogram_count h)

let test_span_slow_op_breakdown () =
  let lines = ref [] in
  Obs.Span.set_slow_sink (fun l -> lines := l :: !lines);
  Obs.Span.set_slow_threshold (Some 0.0);
  let before = Obs.Span.slow_ops_reported () in
  let result =
    Obs.Span.time "outer" (fun () ->
        Obs.Span.time "inner" (fun () -> Thread.delay 0.002);
        17)
  in
  Obs.Span.set_slow_threshold None;
  Obs.Span.set_slow_sink prerr_endline;
  Alcotest.(check int) "thunk result propagates" 17 result;
  (* Only the ROOT span reports; the nested one becomes its breakdown. *)
  Alcotest.(check int) "one slow-op line" 1 (Obs.Span.slow_ops_reported () - before);
  match !lines with
  | [ line ] ->
      Alcotest.(check bool) "names the root" true (contains_sub line "outer");
      Alcotest.(check bool) "breakdown names the child" true
        (contains_sub line "inner")
  | l -> Alcotest.failf "expected one sink line, got %d" (List.length l)

let test_span_closes_on_exception () =
  Obs.Span.set_slow_threshold None;
  (try Obs.Span.time "boom" (fun () -> failwith "expected") with Failure _ -> ());
  (* A later root span must not see "boom" still on the stack: if it
     did, it would be treated as nested and never report.  Reported
     count moving proves the stack unwound. *)
  let lines = ref [] in
  Obs.Span.set_slow_sink (fun l -> lines := l :: !lines);
  Obs.Span.set_slow_threshold (Some 0.0);
  Obs.Span.time "after" (fun () -> Thread.delay 0.001);
  Obs.Span.set_slow_threshold None;
  Obs.Span.set_slow_sink prerr_endline;
  Alcotest.(check int) "root span after exception still reports" 1
    (List.length !lines)

(* The Stats wire codec: a snapshot survives encode/decode of the
   server frame byte-for-byte in structure. *)
let test_stats_reply_roundtrip () =
  let registry = Obs.create_registry () in
  Obs.incr (Obs.counter ~registry "a.count") ~by:42;
  Obs.gauge ~registry "b.gauge" (fun () -> -3);
  let h = Obs.histogram ~registry "c.seconds" in
  Obs.observe h 0.004;
  Obs.observe h 0.25;
  let snap = Obs.snapshot ~registry () in
  let decoded =
    match Message.decode_server (Message.encode_server (Message.Reply (Message.Stats_reply snap))) with
    | Message.Reply (Message.Stats_reply s) -> s
    | _ -> Alcotest.fail "decoded to a different message"
  in
  Alcotest.(check (list (pair string int))) "counters" snap.Obs.counters
    decoded.Obs.counters;
  Alcotest.(check (list (pair string int))) "gauges" snap.Obs.gauges
    decoded.Obs.gauges;
  Alcotest.(check int) "histogram list length"
    (List.length snap.Obs.histograms)
    (List.length decoded.Obs.histograms);
  List.iter2
    (fun (name, (s : Obs.histogram_summary)) (name', (d : Obs.histogram_summary)) ->
      Alcotest.(check string) "histogram name" name name';
      Alcotest.(check int) "count" s.Obs.count d.Obs.count;
      let close a b = Float.abs (a -. b) < 1e-9 in
      Alcotest.(check bool) "floats survive" true
        (close s.Obs.sum d.Obs.sum && close s.Obs.max d.Obs.max
        && close s.Obs.p50 d.Obs.p50 && close s.Obs.p95 d.Obs.p95
        && close s.Obs.p99 d.Obs.p99))
    snap.Obs.histograms decoded.Obs.histograms;
  (* An empty snapshot round-trips too. *)
  let empty = Obs.snapshot ~registry:(Obs.create_registry ()) () in
  match Message.decode_server (Message.encode_server (Message.Reply (Message.Stats_reply empty))) with
  | Message.Reply (Message.Stats_reply s) ->
      Alcotest.(check bool) "empty snapshot" true
        (s.Obs.counters = [] && s.Obs.gauges = [] && s.Obs.histograms = [])
  | _ -> Alcotest.fail "empty snapshot decoded to a different message"

let test_one_line_and_pp () =
  let registry = Obs.create_registry () in
  Obs.incr (Obs.counter ~registry "server.requests") ~by:9;
  let snap = Obs.snapshot ~registry () in
  let line = Obs.one_line snap in
  Alcotest.(check bool) "one_line is one line" true
    (String.length line > 0 && not (String.contains line '\n'));
  let rendered = Format.asprintf "%a" Obs.pp_snapshot snap in
  Alcotest.(check bool) "pp names the counter" true
    (contains_sub rendered "server.requests")

let test_labels () =
  Alcotest.(check string) "labeled builds name{key=value}"
    "lock.blocks{class=Widget}"
    (Obs.labeled "lock.blocks" ("class", "Widget"));
  Alcotest.(check (option string)) "label_value parses it back" (Some "Widget")
    (Obs.label_value "lock.blocks{class=Widget}" ~base:"lock.blocks"
       ~key:"class");
  Alcotest.(check (option string)) "wrong base" None
    (Obs.label_value "lock.blocks{class=Widget}" ~base:"lock.waits"
       ~key:"class");
  Alcotest.(check (option string)) "unlabeled name" None
    (Obs.label_value "lock.blocks" ~base:"lock.blocks" ~key:"class")

(* rates diffs two snapshots: changed counters and histograms as
   per-second deltas, unchanged instruments omitted. *)
let test_rates () =
  let registry = Obs.create_registry () in
  let c = Obs.counter ~registry "t.count" in
  let _idle = Obs.counter ~registry "t.idle" in
  let h = Obs.histogram ~registry "t.seconds" in
  Obs.incr c ~by:3;
  let before = Obs.snapshot ~registry () in
  Obs.incr c ~by:10;
  Obs.observe h 0.01;
  Obs.observe h 0.02;
  let after = Obs.snapshot ~registry () in
  let r = Obs.rates ~before ~after ~dt:2.0 in
  Alcotest.(check (list (pair string (float 1e-6))))
    "only the changed counter, delta/dt"
    [ ("t.count", 5.0) ]
    r.Obs.counter_rates;
  (match r.Obs.histogram_rates with
  | [ (name, rate, summary) ] ->
      Alcotest.(check string) "histogram name" "t.seconds" name;
      Alcotest.(check (float 1e-6)) "observations per second" 1.0 rate;
      Alcotest.(check int) "carries the later summary" 2 summary.Obs.count
  | l -> Alcotest.failf "expected one histogram rate, got %d" (List.length l));
  let rendered = Format.asprintf "%a" Obs.pp_rates r in
  Alcotest.(check bool) "pp_rates names the changed counter" true
    (contains_sub rendered "t.count");
  Alcotest.(check bool) "pp_rates omits the idle counter" true
    (not (contains_sub rendered "t.idle"))

let () =
  (* ORION_LOCKDEP=1: watch this suite's real lock traffic; install's
     exit hook fails the run on any discipline violation. *)
  Orion_analysis.Lockdep.install_from_env ();
  Alcotest.run "orion_obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counters and gauges" `Quick test_counters_and_gauges;
          Alcotest.test_case "replace on collision" `Quick
            test_registry_replaces_on_collision;
          Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "one_line and pp" `Quick test_one_line_and_pp;
          Alcotest.test_case "labels" `Quick test_labels;
          Alcotest.test_case "rates" `Quick test_rates;
        ] );
      ( "spans",
        [
          Alcotest.test_case "slow-op breakdown" `Quick test_span_slow_op_breakdown;
          Alcotest.test_case "closes on exception" `Quick
            test_span_closes_on_exception;
        ] );
      ( "wire",
        [
          Alcotest.test_case "Stats_reply roundtrip" `Quick
            test_stats_reply_roundtrip;
        ] );
    ]
