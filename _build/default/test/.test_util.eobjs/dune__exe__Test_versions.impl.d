test/test_versions.ml: Alcotest Core_error Database Format Gen Instance Integrity List Object_manager Oid Orion_core Orion_schema Orion_versions QCheck QCheck_alcotest Traversal Value
