(** The request/response vocabulary of the ORION wire protocol.

    One frame carries one message.  Client frames are {!request}s;
    server frames are {!server_msg}s — either the {!reply} to the
    oldest outstanding request (requests are answered in order) or an
    unsolicited {!push} (deadlock-victim notification, shutdown
    notice).

    Version negotiation happens in-band: the first request on a
    connection must be [Hello], and the server answers [Welcome] with
    the negotiated version or [Error (Unsupported_version, _)].

    {b Replication} rides the same framing: a replica sends
    [Repl_subscribe] (answered [Repl_ok] with the primary's durable
    LSN) and the primary then pushes [Repl_frames] — verbatim
    write-ahead-log bytes, length+adler32 framed exactly as on disk —
    and [Repl_heartbeat] when idle.  [Repl_ack] is the one request with
    {e no reply}: the replica fires it upstream while frames keep
    flowing downstream, so the stream stays full-duplex without
    breaking the in-order reply rule for every other request.

    Payload encoding uses {!Orion_storage.Bytes_rw} (zig-zag varints,
    length-prefixed strings) and {!Orion_core.Codec}'s tagged value
    encoding, the same primitives as the object store and the
    write-ahead log. *)

open Orion_core

val version : int
(** Current protocol version (4: snapshot reads). *)

type access = Read | Update

type request =
  | Hello of { version : int; client : string }
  | Eval of string  (** one or more DSL forms, evaluated in order *)
  | Begin
  | Commit
  | Abort
  | Lock_composite of { root : Oid.t; access : access }
  | Lock_instance of { oid : Oid.t; access : access }
  | Make of {
      cls : string;
      parents : (Oid.t * string) list;
      attrs : (string * Value.t) list;
    }
  | Components_of of Oid.t
  | Ping
  | Stats  (** one {!Orion_obs.Metrics.snapshot} of the server process *)
  | Bye
  | Repl_subscribe of { from_lsn : int }
      (** start streaming WAL frames from this byte offset of the
          primary's log; answered [Repl_ok] with the durable LSN *)
  | Repl_ack of { lsn : int }
      (** replica's durable progress — fire-and-forget, {e never}
          answered *)
  | Promote
      (** flip a replica into a standalone primary: its stream is
          sealed and it starts accepting writes *)
  | Begin_snapshot
      (** open a lock-free read-only snapshot at the server's sealed
          commit clock; answered [Result (Num clock)].  Accepted by a
          read-only replica too (at its applied clock).  Mutually
          exclusive with an open [Begin] transaction on the session. *)
  | End_snapshot  (** close the session's snapshot; answered [Result Unit] *)
  | Read_attr of { oid : Oid.t; attr : string }
      (** attribute fetch — as of the snapshot's begin clock when the
          session has one open, the live committed value otherwise;
          answered [Result (Value v)] *)
  | Ancestors_of of Oid.t
      (** upward closure over reverse composite references —
          snapshot-scoped like [Read_attr]/[Components_of] *)

(** Result values, mirroring the REPL's: an object, a list of objects,
    or a primitive. *)
type v =
  | Unit
  | Bool of bool
  | Num of int
  | Str of string
  | Obj of Oid.t
  | Objs of Oid.t list
  | Value of Value.t
      (** a full attribute value ([Read_attr]): references, sets and
          nil travel intact where [Num]/[Str] could not carry them *)

type err_code =
  | Unsupported_version
  | Bad_request  (** malformed or out-of-place (e.g. [Commit] without [Begin]) *)
  | Parse_error
  | Eval_error
  | Conflict  (** the transaction was aborted as a deadlock victim *)
  | Timeout  (** a lock wait exceeded the server's lock timeout *)
  | Too_many_sessions
  | Queue_full
  | Shutting_down
  | Read_only  (** a write request reached a read-only replica *)
  | Repl_error
      (** replication protocol misuse: subscribe on a non-primary,
          promote of a non-replica, an out-of-range LSN *)

type reply =
  | Welcome of { version : int; session : int }
  | Result of v
  | Granted
  | Pong
  | Stats_reply of Orion_obs.Metrics.snapshot
  | Repl_ok of { lsn : int }  (** subscription accepted; durable LSN *)
  | Error of { code : err_code; msg : string }

type push =
  | Deadlock_victim of { tx : int; msg : string }
  | Goodbye of { msg : string }  (** server is shutting down *)
  | Repl_frames of { lsn : int; data : bytes }
      (** verbatim WAL frames starting at byte offset [lsn] — append
          unchanged and the local log mirrors the primary's
          byte-for-byte (fsck-checkable as-is) *)
  | Repl_heartbeat of { lsn : int }
      (** the stream is idle at [lsn]; lets a replica detect a dead
          primary *)

type server_msg = Reply of reply | Push of push

val err_code_to_string : err_code -> string
val pp_request : Format.formatter -> request -> unit
val pp_v : Format.formatter -> v -> unit

(** {1 Codec}

    Decoders raise {!Orion_storage.Bytes_rw.Reader.Corrupt} on
    malformed payloads. *)

val encode_request : request -> bytes
val decode_request : bytes -> request
val encode_server : server_msg -> bytes
val decode_server : bytes -> server_msg
