(* End-to-end integration: one design-studio story exercising every
   subsystem together — DSL schema definition, composite objects,
   versions, queries with indexes, change notification, transactions
   with rollback, schema evolution, authorization, full save/load and
   dump/restore — asserting database integrity at every stage. *)

open Orion_core
module A = Orion_schema.Attribute
module Schema = Orion_schema.Schema
module VM = Orion_versions.Version_manager
module Evolution = Orion_evolution.Evolution
module Auth = Orion_authz.Auth
module Authz = Orion_authz.Authz_manager
module Expr = Orion_query.Expr
module Engine = Orion_query.Engine
module Notifier = Orion_notify.Notifier
module Tx = Orion_tx.Tx_manager
module Protocol = Orion_locking.Protocol
module Eval = Orion_dsl.Eval
module Dump = Orion_dsl.Dump

let stage db name =
  match Integrity.check db with
  | [] -> ()
  | violations ->
      Alcotest.failf "integrity after %s:@.%a" name
        (Format.pp_print_list Integrity.pp_violation)
        violations

let schema_program =
  {|
(make-class 'Cell :attributes ((Id :domain String) (Area :domain Integer)))
(make-class 'Block :attributes (
  (Name :domain String)
  (Cells :domain (set-of Cell) :composite true :exclusive nil :dependent nil)))
(make-class 'Board :versionable true :attributes (
  (Name :domain String)
  (Blocks :domain (set-of Block) :composite true :exclusive true :dependent true)))
|}

let test_design_studio () =
  let env = Eval.create_env () in
  let db = Eval.database env in
  ignore (Eval.eval_program env schema_program : Eval.v list);

  (* -- Build the design bottom-up (shared standard cells). ---------- *)
  let cell id area =
    Object_manager.create db ~cls:"Cell"
      ~attrs:[ ("Id", Value.Str id); ("Area", Value.Int area) ]
      ()
  in
  let nand = cell "nand2" 4 and inv = cell "inv" 2 and ff = cell "dff" 9 in
  let block name cells =
    Object_manager.create db ~cls:"Block"
      ~attrs:
        [
          ("Name", Value.Str name);
          ("Cells", Value.VSet (List.map (fun c -> Value.Ref c) cells));
        ]
      ()
  in
  let alu = block "alu" [ nand; inv ] in
  let regs = block "regs" [ ff; inv ] in
  let board =
    Object_manager.create db ~cls:"Board"
      ~attrs:
        [
          ("Name", Value.Str "main");
          ("Blocks", Value.VSet [ Value.Ref alu; Value.Ref regs ]);
        ]
      ()
  in
  stage db "construction";
  Alcotest.(check bool) "inv shared by both blocks" true
    (List.length (Traversal.parents_of db inv) = 2);
  Alcotest.(check int) "board components" 5
    (List.length (Traversal.components_of db board));

  (* -- Queries with an index. --------------------------------------- *)
  let engine = Engine.create db in
  ignore (Engine.add_index engine ~cls:"Cell" ~attr:"Id" : Orion_query.Index.t);
  let big_cells = Expr.Cmp (Expr.Gt, [ "Area" ], Value.Int 3) in
  Alcotest.(check int) "two big cells" 2 (Engine.count engine ~cls:"Cell" big_cells);
  let blocks_with_big =
    Engine.select engine ~cls:"Block" (Expr.Exists ([ "Cells" ], big_cells))
  in
  Alcotest.(check int) "both blocks have one" 2 (List.length blocks_with_big);

  (* -- Change notification + a transaction that aborts. -------------- *)
  let notifier = Eval.notifier env in
  let w = Notifier.watch notifier board in
  Notifier.clear notifier w;
  let manager = Tx.create db in
  let tx = Tx.begin_tx manager in
  Alcotest.(check bool) "tx locks the composite board" true
    (Tx.lock_composite manager tx ~root:board Protocol.Update = `Granted);
  Tx.write_attr manager tx nand "Area" (Value.Int 5);
  Alcotest.(check bool) "watcher saw the component write" true
    (Notifier.changed notifier w);
  ignore (Tx.abort manager tx : int list);
  Alcotest.(check bool) "abort rolled the write back" true
    (Value.equal (Object_manager.read_attr db nand "Area") (Value.Int 4));
  stage db "transaction rollback";
  Alcotest.(check (list Alcotest.int)) "index agrees after rollback"
    (List.map Oid.to_int (Engine.select engine ~cls:"Cell" big_cells))
    (List.map Oid.to_int [ nand; ff ]);

  (* -- Versions: derive the board, rebind a block. ------------------- *)
  let board_v1 = VM.derive db board in
  Alcotest.(check bool) "dependent exclusive blocks become Nil on derive" true
    (Value.equal (Object_manager.read_attr db board_v1 "Blocks") (Value.VSet []));
  let alu2 = block "alu-v2" [ nand ] in
  Object_manager.write_attr db board_v1 "Blocks" (Value.VSet [ Value.Ref alu2 ]);
  VM.set_default_version db (VM.generic_of db board) (Some board_v1);
  stage db "versioning";

  (* -- Schema evolution: blocks become shareable (I2). ---------------- *)
  (match
     Evolution.change_attribute_type (Eval.evolution env) ~cls:"Board"
       ~attr:"Blocks"
       ~to_:(A.composite ~exclusive:false ~dependent:true ())
       ()
   with
  | Ok [ Orion_evolution.Change.I2 ] -> ()
  | Ok other ->
      Alcotest.failf "unexpected classification (%d)" (List.length other)
  | Error r -> Alcotest.failf "rejected: %a" Evolution.pp_rejection r);
  (* Now the two board versions can share a block. *)
  Object_manager.make_component db ~parent:board_v1 ~attr:"Blocks" ~child:regs;
  Alcotest.(check int) "regs now in two boards" 2
    (List.length (Traversal.parents_of db regs));
  stage db "evolution";

  (* -- Authorization on the composite board. ------------------------- *)
  let authz = Eval.authz env in
  Authz.add_member authz ~role:"designers" ~member:"kim";
  (match
     Authz.grant authz ~subject:"designers" ~auth:(Auth.make Auth.Write)
       ~target:(Authz.On_object board_v1)
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "grant failed");
  Alcotest.(check bool) "role member writes a shared component" true
    (Authz.check authz ~subject:"kim" ~op:Auth.Write regs);
  Alcotest.(check bool) "outsider denied" false
    (Authz.check authz ~subject:"mallory" ~op:Auth.Read regs);

  (* -- Full save / load. ---------------------------------------------- *)
  Persist.save db;
  let reopened = Persist.load (Database.store db) in
  stage reopened "reopen";
  Alcotest.(check int) "same population" (Database.count db)
    (Database.count reopened);
  Alcotest.(check bool) "version structure survives" true
    (List.length (VM.versions reopened board) = 2
    && Oid.equal (VM.default_version reopened (VM.generic_of reopened board)) board_v1);
  let engine2 = Engine.create reopened in
  Alcotest.(check int) "query over the reopened database" 2
    (Engine.count engine2 ~cls:"Cell" big_cells);

  (* -- Dump / restore preserves the topology. ------------------------- *)
  let env2 = Dump.restore (Dump.dump reopened) in
  stage (Eval.database env2) "dump/restore";
  Alcotest.(check int) "restored population" (Database.count reopened)
    (Database.count (Eval.database env2))

(* Duality properties over random forests: components/ancestors are
   converse relations, and exclusive/shared partition the components. *)
let prop_traversal_duality =
  QCheck.Test.make ~name:"components-of and ancestors-of are converse" ~count:25
    QCheck.(make QCheck.Gen.(pair (int_bound 1000) bool))
    (fun (seed, exclusive) ->
      let forest =
        Orion_workload.Part_gen.generate ~roots:2
          {
            Orion_workload.Part_gen.default with
            seed;
            exclusive;
            share_prob = 0.35;
            depth = 3;
          }
      in
      let db = forest.Orion_workload.Part_gen.db in
      let objects = Database.fold db ~init:[] ~f:(fun acc i -> i.Instance.oid :: acc) in
      List.for_all
        (fun root ->
          let comps = Traversal.components_of db root in
          List.for_all
            (fun o ->
              let is_comp = List.exists (Oid.equal o) comps in
              let has_anc = List.exists (Oid.equal root) (Traversal.ancestors_of db o) in
              is_comp = has_anc)
            objects
          &&
          (* Partition: exclusive + shared = all, disjoint. *)
          let ex = Traversal.components_of db ~filter:`Exclusive root in
          let sh = Traversal.components_of db ~filter:`Shared root in
          List.length ex + List.length sh = List.length comps
          && List.for_all (fun o -> not (List.exists (Oid.equal o) sh)) ex)
        forest.Orion_workload.Part_gen.roots)

let () =
  Alcotest.run "orion_integration"
    [
      ( "end-to-end",
        [ Alcotest.test_case "design studio" `Quick test_design_studio ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_traversal_duality ]);
    ]
