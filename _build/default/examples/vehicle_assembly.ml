(* Example 1 of the paper (§2.3): the Vehicle physical part hierarchy,
   plus the physical side of the story — clustering components with
   their first parent and watching the page-fetch count of a cold
   composite traversal.

   Run with: dune exec examples/vehicle_assembly.exe *)

open Orion_core
module Store = Orion_storage.Store
module Buffer_pool = Orion_storage.Buffer_pool
module Scenarios = Orion_workload.Scenarios

let () =
  let db = Database.create ~pool_capacity:8 () in
  let classes = Scenarios.define_vehicle_schema db in

  (* Build a small fleet bottom-up: parts exist before their vehicle —
     the paper's fix to [KIM87b]'s forced top-down creation. *)
  let fleet =
    List.init 10 (fun i ->
        Scenarios.build_vehicle db classes ~color:(Printf.sprintf "color-%d" i) ())
  in
  let first = List.hd fleet in
  Format.printf "built %d vehicles, %d objects total@." (List.length fleet)
    (Database.count db);

  (* Exclusivity: a tire on vehicle 1 cannot simultaneously be on
     vehicle 2 (Topology Rule 1). *)
  let second = List.nth fleet 1 in
  (match
     Object_manager.make_component db ~parent:second.Scenarios.v_vehicle
       ~attr:"Tires" ~child:(List.hd first.Scenarios.v_tires)
   with
  | () -> assert false
  | exception Core_error.Error _ ->
      print_endline "tire sharing rejected (physical part hierarchy)");

  (* Dismantle vehicle 1: its parts survive (independent references)
     and can be reused — the paper's re-use requirement. *)
  Object_manager.delete db first.Scenarios.v_vehicle;
  Object_manager.make_component db ~parent:second.Scenarios.v_vehicle ~attr:"Tires"
    ~child:(List.hd first.Scenarios.v_tires);
  Format.printf "vehicle 2 now has %d tires@."
    (List.length
       (Traversal.components_of db ~classes:[ classes.Scenarios.auto_tires ]
          second.Scenarios.v_vehicle));

  (* Persist and traverse cold: the buffer-pool misses are the physical
     cost of reading one composite object from pages. *)
  Persist.checkpoint db;
  let store = Database.store db in
  Store.drop_cache store;
  Store.reset_io_stats store;
  let visited = Persist.walk_cold db second.Scenarios.v_vehicle in
  let _, pool = Store.io_stats store in
  Format.printf "cold traversal: %d objects read, %d page misses@." visited
    pool.Buffer_pool.misses;

  Integrity.assert_ok db;
  print_endline "integrity: consistent"
