lib/authz/auth.mli: Format
