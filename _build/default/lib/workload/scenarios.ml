open Orion_core
module A = Orion_schema.Attribute
module D = Orion_schema.Domain
module Schema = Orion_schema.Schema

type vehicle_classes = {
  vehicle : string;
  auto_body : string;
  auto_drivetrain : string;
  auto_tires : string;
  company : string;
}

let define_vehicle_schema db =
  let schema = Database.schema db in
  let simple name =
    ignore
      (Schema.define schema ~name
         ~attributes:
           [ A.make ~name:"Name" ~domain:(D.Primitive D.P_string) () ]
         ()
        : Orion_schema.Class_def.t)
  in
  simple "Company";
  simple "AutoBody";
  simple "AutoDrivetrain";
  simple "AutoTires";
  (* Example 1: independent exclusive composite references — parts are
     used by at most one vehicle but survive its dismantling. *)
  let part_ref = A.composite ~dependent:false ~exclusive:true () in
  ignore
    (Schema.define schema ~name:"Vehicle"
       ~attributes:
         [
           A.make ~name:"Manufacturer" ~domain:(D.Class "Company") ();
           A.make ~name:"Body" ~domain:(D.Class "AutoBody") ~refkind:part_ref ();
           A.make ~name:"Drivetrain" ~domain:(D.Class "AutoDrivetrain")
             ~refkind:part_ref ();
           A.make ~name:"Tires" ~domain:(D.Class "AutoTires") ~collection:A.Set
             ~refkind:part_ref ();
           A.make ~name:"Color" ~domain:(D.Primitive D.P_string) ();
         ]
       ()
      : Orion_schema.Class_def.t);
  {
    vehicle = "Vehicle";
    auto_body = "AutoBody";
    auto_drivetrain = "AutoDrivetrain";
    auto_tires = "AutoTires";
    company = "Company";
  }

type document_classes = {
  document : string;
  section : string;
  paragraph : string;
  image : string;
}

let define_document_schema db =
  let schema = Database.schema db in
  ignore
    (Schema.define schema ~name:"Paragraph"
       ~attributes:[ A.make ~name:"Text" ~domain:(D.Primitive D.P_string) () ]
       ()
      : Orion_schema.Class_def.t);
  ignore
    (Schema.define schema ~name:"Image"
       ~attributes:[ A.make ~name:"File" ~domain:(D.Primitive D.P_string) () ]
       ()
      : Orion_schema.Class_def.t);
  ignore
    (Schema.define schema ~name:"Section"
       ~attributes:
         [
           A.make ~name:"Content" ~domain:(D.Class "Paragraph") ~collection:A.Set
             ~refkind:(A.composite ~dependent:true ~exclusive:false ())
             ();
         ]
       ()
      : Orion_schema.Class_def.t);
  ignore
    (Schema.define schema ~name:"Document"
       ~attributes:
         [
           A.make ~name:"Title" ~domain:(D.Primitive D.P_string) ();
           A.make ~name:"Authors" ~domain:(D.Primitive D.P_string)
             ~collection:A.Set ();
           A.make ~name:"Sections" ~domain:(D.Class "Section") ~collection:A.Set
             ~refkind:(A.composite ~dependent:true ~exclusive:false ())
             ();
           A.make ~name:"Figures" ~domain:(D.Class "Image") ~collection:A.Set
             ~refkind:(A.composite ~dependent:false ~exclusive:false ())
             ();
           A.make ~name:"Annotations" ~domain:(D.Class "Paragraph")
             ~collection:A.Set
             ~refkind:(A.composite ~dependent:true ~exclusive:true ())
             ();
         ]
       ()
      : Orion_schema.Class_def.t);
  {
    document = "Document";
    section = "Section";
    paragraph = "Paragraph";
    image = "Image";
  }

type vehicle = {
  v_vehicle : Oid.t;
  v_body : Oid.t;
  v_drivetrain : Oid.t;
  v_tires : Oid.t list;
}

let build_vehicle db (c : vehicle_classes) ?(tires = 4) ~color () =
  (* Bottom-up creation: the parts exist before the vehicle (one of the
     §1 shortcomings the extended model removes). *)
  let body = Object_manager.create db ~cls:c.auto_body () in
  let drivetrain = Object_manager.create db ~cls:c.auto_drivetrain () in
  let tire_oids =
    List.init tires (fun _ -> Object_manager.create db ~cls:c.auto_tires ())
  in
  let vehicle =
    Object_manager.create db ~cls:c.vehicle
      ~attrs:
        [
          ("Color", Value.Str color);
          ("Body", Value.Ref body);
          ("Drivetrain", Value.Ref drivetrain);
          ("Tires", Value.VSet (List.map (fun t -> Value.Ref t) tire_oids));
        ]
      ()
  in
  { v_vehicle = vehicle; v_body = body; v_drivetrain = drivetrain; v_tires = tire_oids }

type document = {
  d_document : Oid.t;
  d_sections : Oid.t list;
  d_paragraphs : Oid.t list list;
}

let build_document db (c : document_classes) ~title ~sections
    ~paragraphs_per_section =
  let doc =
    Object_manager.create db ~cls:c.document ~attrs:[ ("Title", Value.Str title) ]
      ()
  in
  let section_data =
    List.init sections (fun i ->
        let section =
          Object_manager.create db ~cls:c.section
            ~parents:[ (doc, "Sections") ]
            ()
        in
        let paragraphs =
          List.init paragraphs_per_section (fun j ->
              Object_manager.create db ~cls:c.paragraph
                ~parents:[ (section, "Content") ]
                ~attrs:
                  [ ("Text", Value.Str (Printf.sprintf "s%d p%d of %s" i j title)) ]
                ())
        in
        (section, paragraphs))
  in
  {
    d_document = doc;
    d_sections = List.map fst section_data;
    d_paragraphs = List.map snd section_data;
  }
