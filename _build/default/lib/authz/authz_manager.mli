(** Composite objects as a unit of authorization (§6).

    An explicit authorization can be granted on a {e composite class}
    (implying the same authorization on all instances of the class —
    subclasses included — and on all their components) or on a
    {e composite object} (implying it on every component).  Granting
    checks for conflicts against the authorizations already implied on
    every affected object and rejects the grant when one arises, as in
    the paper's [Instance\[o'\]] examples. *)

open Orion_core

type subject = string
(** A user or a role name; roles group subjects (see {!add_member}) —
    the [RABI88] subject hierarchy reduced to transitive role
    membership. *)

type target =
  | On_class of string
  | On_object of Oid.t  (** the root of a composite object, or any object *)

val pp_target : Format.formatter -> target -> unit

type grant = { subject : subject; auth : Auth.t; target : target }

type t

val create : Database.t -> t

val grants : t -> grant list

val add_member : t -> role:subject -> member:subject -> unit
(** [member] (a user or another role) inherits every authorization
    granted to [role], transitively.  Cycles are tolerated (membership
    closure uses a visited set). *)

val roles_of : t -> subject -> subject list
(** Transitive roles of the subject, without the subject itself. *)

val grant :
  t -> subject:subject -> auth:Auth.t -> target:target -> (unit, grant list) result
(** Install the authorization unless it conflicts with the
    authorizations implied on some affected object; on rejection the
    conflicting existing grants are returned. *)

val revoke : t -> subject:subject -> auth:Auth.t -> target:target -> bool
(** Remove an explicit grant (true if present). *)

val implied_on : t -> subject:subject -> Oid.t -> Auth.combined
(** The combination of every authorization the subject holds on the
    object: explicit grants on it, grants on composite objects it is a
    component of, and grants on its class or an ancestor's class. *)

val check : t -> subject:subject -> op:Auth.atype -> Oid.t -> bool
(** [allows (implied_on …) op]. *)

val sources_for : t -> subject:subject -> Oid.t -> (grant * Auth.t) list
(** The explicit grants contributing to {!implied_on} (for the F4/F5
    experiments' explanations). *)
