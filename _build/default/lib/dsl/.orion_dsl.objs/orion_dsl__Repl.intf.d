lib/dsl/repl.mli: Eval Orion_util
