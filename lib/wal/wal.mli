(** The redo-only write-ahead log.

    An append-only stream of length-prefixed, checksummed
    {!Wal_record.t} frames ([len:u32le][adler32:u32le][payload]),
    buffered in memory with explicit file save/load — the same
    laptop-scale simulation stance as {!Orion_storage.Disk}, with the
    same instrumentation philosophy: [syncs] counts the
    fsync-equivalents a real log would pay (one per commit, one per
    checkpoint).

    {2 Protocol}

    {!attach} wires a log under a database: every physical page write
    and store-directory mutation is journaled as it happens, and
    {!Orion_core.Persist.save} becomes a fuzzy checkpoint — bracketed by
    [Checkpoint_begin]/[Checkpoint] records, snapshotted to
    [?snapshot_path] (atomically, write-then-rename), and followed by a
    log truncation.  Transaction commits append their after-images
    through {!log_commit} (wired in {!Orion_tx.Tx_manager}).  Crash
    semantics assume checkpoints run at transaction-quiescent points;
    commit durability between checkpoints is entirely the log's.

    {2 Crash injection}

    {!inject_fault} arms the same fail-after-N / torn-write faults as
    {!Orion_storage.Disk.inject_fault}, so a scripted crash can land
    between any two appends or mid-frame; {!tear} chops bytes off the
    tail after the fact.  {!scan} never raises on damage: it decodes
    the longest intact prefix and reports [torn_tail]. *)

open Orion_core
module Store = Orion_storage.Store

type t

exception Crashed

val create : unit -> t

val append : t -> Wal_record.t -> unit
(** @raise Crashed when an injected fault fires (a torn fault leaves a
    partial frame on the log) or the log is already crashed. *)

val sync : t -> unit
(** Count one fsync-equivalent.  Without a backing file the in-memory
    buffer is always "durable" and the counter is the cost model; with
    one ({!set_backing}) the log is also written out, making the sync a
    real persistence point. *)

val set_backing : t -> string option -> unit
(** File the log is saved to on every {!sync} and {!truncate} (the CLI's
    [--wal] mode); [None] reverts to in-memory only. *)

val size : t -> int
(** Bytes currently in the log. *)

val durable_lsn : t -> int
(** Bytes of the log guaranteed to survive a crash: the buffer length
    at the last {!sync} (or load).  Replication ships only up to this
    point — the log's byte offsets are the stream's LSNs. *)

val stats : t -> Database.wal_stats

val truncate : t -> unit
(** Drop every record and restart the log with a fresh [Genesis]
    (called after a checkpoint's snapshot is durable). *)

(** {1 Crash injection} *)

val inject_fault : t -> [ `Fail_after of int | `Torn_after of int ] option -> unit
(** [`Fail_after n]: the next [n] appends succeed, the one after raises
    {!Crashed} leaving the log unchanged.  [`Torn_after n]: same, but
    half of the failing frame reaches the log (a torn tail). *)

val crashed : t -> bool
val revive : t -> unit

val tear : t -> bytes:int -> unit
(** Chop the last [bytes] bytes off the log (simulates losing the tail
    of the log device). *)

(** {1 Reading} *)

type scan = {
  records : Wal_record.t list;  (** longest intact prefix, in order *)
  torn_tail : bool;  (** a truncated / checksum-failed frame was hit *)
  valid_bytes : int;  (** bytes covered by [records] *)
}

val scan : t -> scan

val contents : t -> bytes
val of_bytes : bytes -> t
(** The surviving log image, e.g. carried across a simulated crash. *)

val read_from : t -> lsn:int -> max_bytes:int -> (bytes * int * int) option
(** [read_from t ~lsn ~max_bytes] is [Some (data, end_lsn, frames)]:
    the whole frames starting at byte offset [lsn], up to the durable
    point and roughly [max_bytes] (at least one frame is always
    returned, even when it alone exceeds the budget).  [None] when
    [lsn] is out of range or no whole durable frame lies past it.  The
    bytes are verbatim log content — a receiver appending them
    ({!append_raw}) reproduces the log byte-for-byte. *)

val append_raw : t -> bytes -> unit
(** Append pre-framed bytes shipped from another log, verbatim.  The
    caller owns framing integrity ({!read_from} only ships whole,
    checksummed frames). *)

val decode_frames : bytes -> Wal_record.t list
(** Decode a run of whole frames (as returned by {!read_from}).
    @raise Failure on a short or checksum-failed frame — shipped bytes
    come from below the sender's durable point, so damage is a
    transport bug, never legal crash residue. *)

val save_file : t -> string -> unit
(** Atomic (write-then-rename), like {!Orion_storage.Store.save_file}. *)

val load_file : string -> t
(** Never raises on a damaged tail — damage surfaces in {!scan}. *)

(** {1 Attachment} *)

val attach :
  ?snapshot_path:string -> ?truncate_on_checkpoint:bool -> t -> Database.t -> unit
(** Journal every storage write of [db]'s store into the log (appending
    a [Genesis] record if the log is empty), publish WAL counters into
    {!Orion_core.Database.stats}, and hook the checkpoint protocol into
    {!Orion_core.Persist.save}: with [?snapshot_path] the store is saved
    there and the log truncated once the checkpoint completes; without
    it the log is retained whole (recovery can then rebuild the store
    from the log alone).  Attaching an empty log to a store that already
    has history first journals a {e base backup} — every page and
    directory entry — so the log always reaches back to a complete base.
    A database carrying un-checkpointed state (one just returned by
    [Recovery.replay]) must be checkpointed after attach before the old
    log is discarded: the base backup captures the store, not the
    in-memory workspace.  [?truncate_on_checkpoint] (default [true])
    governs whether a snapshotting checkpoint also truncates: a
    replication primary passes [false] so the log keeps its full
    history and its byte offsets stay valid as stream LSNs. *)

val attach_store : t -> Store.t -> unit
(** The storage-level half of {!attach} (no checkpoint hook, no stats
    publication) — enough to journal a bare store. *)

val log_commit : t -> Database.t -> tx:int -> touched:Oid.t list -> unit
(** Append the after-image ([Obj_put]) or tombstone ([Obj_delete]) of
    every touched object, seal them with a [Commit] carrying the
    database counters, and {!sync} — all under the log mutex, so the
    sequence is atomic against concurrent appenders.  Called by
    {!Orion_tx.Tx_manager.commit}. *)

val commit_records : Database.t -> tx:int -> touched:Oid.t list -> Wal_record.t list
(** The unsealed after-image/tombstone records {!log_commit} would
    append for [tx] — captured at commit-submission time so the
    group-commit committer can batch several transactions' records
    under one {!Wal_record.Commit_group} seal. *)

val log_batch : t -> records:Wal_record.t list -> seal:Wal_record.t -> unit
(** Append [records], then [seal], then {!sync} — one durability point
    for a whole batch, atomic under the log mutex.
    @raise Crashed as {!append}/{!sync} (an injected fault can land on
    any append inside the batch, leaving an unsealed — hence
    replayed-as-nothing — prefix). *)

(** {1 Thread-safety}

    Every operation that touches the log buffer takes an internal
    mutex, so shard domains (journaling page writes), the group-commit
    committer thread and checkpoints can share one log.  Observability
    counters follow the registry-wide convention: racing increments may
    lose a count, never crash. *)
