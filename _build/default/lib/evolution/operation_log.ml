type entry =
  | Set_flags of {
      referencing_cls : string;
      attr : string;
      exclusive : bool;
      dependent : bool;
    }
  | Drop_rrefs of { referencing_cls : string; attr : string }

type t = {
  logs : (string, (int * entry) list ref) Hashtbl.t;  (* newest first *)
  mutable cc : int;
}

let create () = { logs = Hashtbl.create 16; cc = 0 }

let append t ~domain_cls entry =
  t.cc <- t.cc + 1;
  let log =
    match Hashtbl.find_opt t.logs domain_cls with
    | Some log -> log
    | None ->
        let log = ref [] in
        Hashtbl.replace t.logs domain_cls log;
        log
  in
  log := (t.cc, entry) :: !log;
  t.cc

let current_cc t = t.cc

let pending_for t ~classes ~since =
  classes
  |> List.concat_map (fun cls ->
         match Hashtbl.find_opt t.logs cls with
         | None -> []
         | Some log -> List.filter (fun (cc, _) -> cc > since) !log)
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let entry_count t =
  Hashtbl.fold (fun _ log acc -> acc + List.length !log) t.logs 0
