(** A multi-granularity lock table.

    Granules are class objects and instances (the roots of composite
    objects are instances).  A transaction may hold several modes on
    one granule; a request is granted when its mode is compatible with
    every mode held by {e other} transactions.  Incompatible requests
    join a FIFO wait queue; releases wake compatible waiters in order.
    Deadlocks are detected on the waits-for graph. *)

open Orion_core

type granule = G_class of string | G_instance of Oid.t

val pp_granule : Format.formatter -> granule -> unit

type tx_id = int

type t

type instruments
(** The obs counters a table feeds ([lock.acquisitions] and kin).
    Separable so a partitioned lock space ({!Lock_partitions}) can
    share one record across its slices — the registry replaces on name
    collision, so per-slice registration would hide all but one. *)

val make_instruments : unit -> instruments

val create :
  ?compat:(Lock_mode.t -> Lock_mode.t -> bool) ->
  ?instruments:instruments ->
  unit ->
  t
(** [?compat] defaults to {!Lock_mode.compat} (the paper's matrix);
    pass {!Lock_mode.compat_refined} for ablation A3.  [?instruments]
    defaults to a fresh {!make_instruments} registration. *)

val set_classifier : t -> (Oid.t -> string option) -> unit
(** Install the instance→class mapping used to label per-class block
    counters ([lock.blocks{class=C}] in the obs registry).  Class
    granules are labeled directly; instance granules go through the
    classifier ([None] — the default for every oid — records only the
    unlabeled total).  {!Orion_tx.Tx_manager.create} installs a
    classifier backed by its database. *)

val acquire : t -> tx:tx_id -> granule -> Lock_mode.t -> [ `Granted | `Blocked ]
(** On [`Blocked] the request stays queued; it may be granted later by
    {!release_all} (see {!newly_granted}).  Requesting a mode already
    held (or covered by a held mode) is granted immediately. *)

val try_acquire : t -> tx:tx_id -> granule -> Lock_mode.t -> bool
(** Like {!acquire} but never queues: [false] leaves no trace (used for
    opportunistic lock escalation). *)

val holds : t -> tx:tx_id -> granule -> Lock_mode.t -> bool
(** Whether the transaction holds the mode (or a supremum covering it). *)

val holders : t -> granule -> (tx_id * Lock_mode.t) list

val locks_of : t -> tx:tx_id -> (granule * Lock_mode.t) list

val waiting : t -> (tx_id * granule * Lock_mode.t) list

val queued : t -> tx:tx_id -> bool
(** Whether the transaction still has a request queued anywhere in this
    table (used by a partitioned space to decide "fully unblocked"
    across slices). *)

val has_waiters : t -> bool
(** Whether any request is queued at any granule. *)

val release_all : t -> tx:tx_id -> tx_id list
(** Release every lock and pending request of the transaction; returns
    transactions whose queued requests became fully unblocked (no
    request of theirs remains queued). *)

val blocked_on : t -> tx:tx_id -> tx_id list
(** The transactions whose held locks block this transaction's queued
    requests (the waits-for edges). *)

val find_deadlock : t -> tx_id list option
(** A cycle in the waits-for graph, if any. *)

val find_deadlock_over : t list -> tx_id list option
(** A cycle in the union of several tables' waits-for graphs — the
    merged search over a partitioned lock space, where a
    cross-partition cycle's edges are split among slices and no single
    table can see it.  [find_deadlock_over [t]] = [find_deadlock t]. *)

type stats = { acquisitions : int; blocks : int; wakeups : int }

val stats : t -> stats
val reset_stats : t -> unit
