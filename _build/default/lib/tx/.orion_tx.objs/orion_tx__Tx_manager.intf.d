lib/tx/tx_manager.mli: Database Oid Orion_core Orion_locking Value
