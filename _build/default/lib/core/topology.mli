(** The topology rules of §2.2, as pure predicates over reverse
    reference sets.

    The operational checks (the Make-Component Rule) guarantee the
    rules inductively; the rule predicates themselves are used by the
    integrity checker and by property-based tests. *)

val rule1 : Rref.refsets -> bool
(** card(IX(O)) ≤ 1 and card(DX(O)) ≤ 1. *)

val rule2 : Rref.refsets -> bool
(** An independent exclusive reference excludes a dependent exclusive
    one, and vice versa. *)

val rule3 : Rref.refsets -> bool
(** Exclusive references exclude shared ones, and vice versa. *)

val holds : Rref.refsets -> bool
(** Rules 1–3 together.  (Rule 4 — any number of weak references — is
    vacuous here because weak references carry no reverse reference.) *)

val can_make_component :
  Rref.refsets -> exclusive:bool -> (unit, Core_error.topology_reason) result
(** The Make-Component Rule: [exclusive] is the nature of the composite
    attribute about to reference the object whose reverse references
    are given. *)
