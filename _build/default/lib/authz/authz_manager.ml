open Orion_core
module Schema = Orion_schema.Schema

type subject = string

type target = On_class of string | On_object of Oid.t

let pp_target ppf = function
  | On_class c -> Format.fprintf ppf "class %s" c
  | On_object oid -> Format.fprintf ppf "object %a" Oid.pp oid

type grant = { subject : subject; auth : Auth.t; target : target }

type t = {
  db : Database.t;
  mutable grants : grant list;
  memberships : (subject, subject list) Hashtbl.t;  (* member -> roles *)
}

let create db = { db; grants = []; memberships = Hashtbl.create 16 }

let grants t = t.grants

let add_member t ~role ~member =
  let existing =
    match Hashtbl.find_opt t.memberships member with Some l -> l | None -> []
  in
  if not (List.mem role existing) then
    Hashtbl.replace t.memberships member (role :: existing)

let roles_of t subject =
  let seen = Hashtbl.create 8 in
  let rec go s acc =
    match Hashtbl.find_opt t.memberships s with
    | None -> acc
    | Some roles ->
        List.fold_left
          (fun acc role ->
            if Hashtbl.mem seen role then acc
            else begin
              Hashtbl.replace seen role ();
              go role (role :: acc)
            end)
          acc roles
  in
  List.rev (go subject [])

(* The grant applies to [oid] when [oid] is the target object or a
   component of it, or when the target class is (a superclass of) the
   class of [oid] or of a composite object containing [oid]. *)
let applies t oid (g : grant) =
  let covering = oid :: Traversal.ancestors_of t.db oid in
  match g.target with
  | On_object o -> List.exists (Oid.equal o) covering
  | On_class c ->
      Schema.mem (Database.schema t.db) c
      && List.exists
           (fun covered ->
             match Database.find t.db covered with
             | None -> false
             | Some inst ->
                 Schema.is_subclass_of (Database.schema t.db) ~sub:inst.cls
                   ~super:c)
           covering

let sources_for t ~subject oid =
  let subjects = subject :: roles_of t subject in
  t.grants
  |> List.filter (fun g ->
         List.exists (String.equal g.subject) subjects && applies t oid g)
  |> List.map (fun g -> (g, g.auth))

let implied_on t ~subject oid =
  Auth.combine (List.map snd (sources_for t ~subject oid))

let check t ~subject ~op oid = Auth.allows (implied_on t ~subject oid) op

(* Objects on which the new grant will imply an authorization. *)
let affected t (g : grant) =
  match g.target with
  | On_object o ->
      if Database.exists t.db o then o :: Traversal.components_of t.db o else []
  | On_class c ->
      if not (Schema.mem (Database.schema t.db) c) then []
      else
        Database.instances_of t.db ~subclasses:true c
        |> List.concat_map (fun inst -> inst :: Traversal.components_of t.db inst)
        |> List.sort_uniq Oid.compare

let grant t ~subject ~auth ~target =
  let candidate = { subject; auth; target } in
  let saved = t.grants in
  t.grants <- t.grants @ [ candidate ];
  let conflicting =
    affected t candidate
    |> List.filter_map (fun oid ->
           match implied_on t ~subject oid with
           | Auth.Conflict ->
               Some
                 (List.filter
                    (fun (g, _) -> g != candidate)
                    (sources_for t ~subject oid))
           | Auth.Effective _ -> None)
    |> List.concat_map (List.map fst)
    |> List.fold_left (fun acc g -> if List.memq g acc then acc else g :: acc) []
  in
  if conflicting = [] then Ok ()
  else begin
    t.grants <- saved;
    Error (List.rev conflicting)
  end

let revoke t ~subject ~auth ~target =
  let before = List.length t.grants in
  t.grants <-
    List.filter
      (fun g ->
        not
          (String.equal g.subject subject && Auth.equal g.auth auth
          && g.target = target))
      t.grants;
  List.length t.grants < before
