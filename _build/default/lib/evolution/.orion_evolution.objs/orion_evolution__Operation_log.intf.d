lib/evolution/operation_log.mli:
