(** Whole-database invariant checker.

    Used by the property-based tests: after an arbitrary sequence of
    operations, [check] must return no violations.  Dangling weak
    references are reported separately — the paper keeps no reverse
    references for weak references (D3), so they are legal residue of
    deletion, not corruption. *)

type violation =
  | Dangling_composite of { parent : Oid.t; attr : string; target : Oid.t }
  | Missing_rref of { parent : Oid.t; attr : string; child : Oid.t }
  | Orphan_rref of { child : Oid.t; rref : Rref.t; reason : string }
  | Topology_broken of Oid.t
  | Bad_type of { oid : Oid.t; attr : string }
  | Composite_cycle of Oid.t
  | Version_broken of { oid : Oid.t; reason : string }
  | Gref_mismatch of {
      generic : Oid.t;
      parent : Oid.t;
      attr : string;
      expected : int;
      actual : int;
    }

val pp_violation : Format.formatter -> violation -> unit

val check : Database.t -> violation list

val dangling_weak_refs : Database.t -> (Oid.t * string * Oid.t) list
(** [(holder, attr, dead_target)] triples: the residue deletion leaves
    behind in weak references. *)

val scrub_dangling_weak : Database.t -> int
(** Remove dangling weak references from attribute values (the residue
    deletion legally leaves behind, D3) — ORION would run such a
    scavenger offline.  Returns the number of references removed. *)

val assert_ok : Database.t -> unit
(** @raise Failure listing the violations, when any. *)
