lib/core/object_manager.mli: Database Instance Oid Orion_schema Value
