(** Blocking client for the ORION network server.

    One connection, one request in flight at a time: each call frames a
    {!Orion_protocol.Message.request}, writes it, and blocks until the
    reply arrives.  Server pushes (deadlock-victim notifications,
    shutdown notices) interleaved with the reply are collected; drain
    them with {!notices}.

    A [Lock_composite]/[Lock_instance] request the server parks simply
    keeps this client blocked in {!lock_composite}/{!lock_instance}
    until the lock is granted — or until the wait ends in a deadlock
    abort ({!Error} with [Conflict]) or lock timeout ([Timeout]). *)

open Orion_core
module Message = Orion_protocol.Message
module Addr = Orion_protocol.Addr

type t

exception Error of Message.err_code * string
(** An error reply from the server.  After [Conflict] or [Timeout] the
    transaction is already aborted server-side; the connection remains
    usable and the client can retry with a fresh {!begin_tx}. *)

exception Disconnected of string
(** The connection died (EOF, reset, or a protocol-corrupt frame). *)

val connect : ?client_name:string -> Addr.t -> t
(** Dial, then perform the [Hello]/[Welcome] handshake.
    @raise Error with [Unsupported_version] or [Too_many_sessions]
    @raise Unix.Unix_error when the dial fails *)

val session_id : t -> int
val close : t -> unit
(** Polite [Bye] (best effort), then close the socket. *)

val eval : t -> string -> Message.v
(** Evaluate DSL forms server-side; the value of the last form. *)

val begin_tx : t -> int
(** Open this session's transaction; its id. *)

val commit : t -> unit
val abort : t -> unit

val lock_composite : t -> root:Oid.t -> Message.access -> unit
(** Blocks until granted (see the module preamble for how waits end). *)

val lock_instance : t -> Oid.t -> Message.access -> unit

val make :
  t ->
  cls:string ->
  ?parents:(Oid.t * string) list ->
  ?attrs:(string * Value.t) list ->
  unit ->
  Oid.t

val components_of : t -> Oid.t -> Oid.t list

val ancestors_of : t -> Oid.t -> Oid.t list

val read_attr : t -> Oid.t -> string -> Value.t
(** Attribute fetch ([Value.Null] when the attribute is unset).  Inside
    a snapshot, the value as of the begin clock. *)

(** {1 Snapshot reads}

    Between {!begin_snapshot} and {!end_snapshot} the session's reads
    ({!read_attr}, {!components_of}, {!ancestors_of}) resolve against
    the server's MVCC version store at the snapshot's begin clock:
    lock-free and commit-clock consistent, even on a read-only replica
    (which answers at its applied clock). *)

val begin_snapshot : t -> int
(** Open a lock-free read-only snapshot; returns its begin clock.
    @raise Error with [Bad_request] if the session already has a
    transaction or snapshot open *)

val end_snapshot : t -> unit

val ping : t -> unit

val stats : t -> Orion_obs.Metrics.snapshot
(** One metrics snapshot of the server process: every registered
    counter, gauge and latency-histogram summary. *)

val notices : t -> Message.push list
(** Drain the pushes received so far, oldest first. *)

(** {1 Replication}

    After {!repl_subscribe} the connection switches from
    request/reply to streaming: the server pushes
    [Repl_frames]/[Repl_heartbeat] unprompted and the only legal
    upstream traffic is {!repl_ack} (the protocol's one no-reply
    request).  Consume the stream with {!next_push}. *)

val repl_subscribe : t -> from_lsn:int -> int
(** Subscribe to the primary's WAL stream from byte offset [from_lsn];
    returns the primary's durable LSN at subscription time.
    @raise Error with [Repl_error] if the server is not a streaming
    primary or the LSN is out of range *)

val next_push : t -> Message.push
(** Block until the next push arrives (already-queued notices first).
    @raise Disconnected if a reply frame arrives instead — only legal
    with no request in flight, i.e. on a subscribed stream. *)

val repl_ack : t -> lsn:int -> unit
(** Report durable progress upstream — fire-and-forget, never blocks
    on a reply. *)

val shutdown : t -> unit
(** Shut the socket down both ways without closing the fd — wakes a
    thread blocked in {!next_push} with {!Disconnected}.  Safe from
    another thread; the owner still calls {!close}. *)

val promote : t -> unit
(** Ask a replica server to seal its stream and become a standalone
    primary.
    @raise Error with [Repl_error] if the server is not a replica *)
