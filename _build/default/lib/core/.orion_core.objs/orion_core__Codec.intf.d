lib/core/codec.mli: Database Instance
