module A = Orion_schema.Attribute

type primitive = I1 | I2 | I3 | I4 | D1 | D2 | D3

let pp_primitive ppf p =
  Format.pp_print_string ppf
    (match p with
    | I1 -> "I1"
    | I2 -> "I2"
    | I3 -> "I3"
    | I4 -> "I4"
    | D1 -> "D1"
    | D2 -> "D2"
    | D3 -> "D3")

let classify ~from_ ~to_ =
  match (from_, to_) with
  | A.Weak, A.Weak -> []
  | A.Composite _, A.Weak -> [ I1 ]
  | A.Weak, A.Composite { exclusive; _ } -> [ (if exclusive then D1 else D2) ]
  | A.Composite f, A.Composite t ->
      let exclusivity =
        match (f.exclusive, t.exclusive) with
        | true, false -> [ I2 ]
        | false, true -> [ D3 ]
        | true, true | false, false -> []
      in
      let dependency =
        match (f.dependent, t.dependent) with
        | true, false -> [ I3 ]
        | false, true -> [ I4 ]
        | true, true | false, false -> []
      in
      exclusivity @ dependency

let state_dependent primitives =
  List.exists (function D1 | D2 | D3 -> true | I1 | I2 | I3 | I4 -> false) primitives
