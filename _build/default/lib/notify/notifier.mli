(** Change notification for composite objects.

    The paper's version model builds on [CHOU88] ("Versions and Change
    Notification in an Object-Oriented Database System"): designers
    watching a composite design want to learn that {e some} component
    changed, without polling every component.  This is the flag-based
    ("passive") variant: watching a root raises a change flag whenever
    a component's attribute is written, a component is attached or
    detached (both surface as attribute writes on some member), or the
    root itself is deleted; the watcher reads and clears the flag at
    its own pace.

    Changes to an object reach every watched root it is currently a
    component of (through the reverse composite references), so shared
    components notify all their containing composite objects.
    Transaction rollback conservatively marks every watch changed. *)

open Orion_core

type t

val create : Database.t -> t

val detach : t -> unit
(** Remove the database subscription; the notifier goes quiet. *)

type watch

val watch : t -> Oid.t -> watch
(** Watch the composite object rooted at the OID.  Watching a version
    instance also reacts to changes reached through its components'
    dynamic bindings (resolved at event time). *)

val unwatch : t -> watch -> unit

val root : watch -> Oid.t

type change = {
  member : Oid.t;  (** the object that changed (the root itself included) *)
  attr : string option;  (** [None] when the member was deleted *)
}

val changed : t -> watch -> bool

val changes : t -> watch -> change list
(** Accumulated since the last {!clear}, oldest first; deduplicated per
    (member, attr). *)

val clear : t -> watch -> unit

val dirty_roots : t -> Oid.t list
(** Roots of all currently changed watches (sorted, deduplicated). *)
