(* Associative access over composite objects: the query engine with
   attribute indexes, driven over a persistent parts catalog.

   Run with: dune exec examples/parts_catalog.exe
   (uses a temporary database file to show the save/load lifecycle) *)

open Orion_core
module A = Orion_schema.Attribute
module D = Orion_schema.Domain
module Schema = Orion_schema.Schema
module Expr = Orion_query.Expr
module Engine = Orion_query.Engine
module Store = Orion_storage.Store

let build_catalog db =
  let define name attrs =
    ignore
      (Schema.define (Database.schema db) ~name ~attributes:attrs ()
        : Orion_schema.Class_def.t)
  in
  define "Component"
    [
      A.make ~name:"PartNo" ~domain:(D.Primitive D.P_string) ();
      A.make ~name:"Grams" ~domain:(D.Primitive D.P_integer) ();
    ];
  define "Assembly"
    [
      A.make ~name:"Name" ~domain:(D.Primitive D.P_string) ();
      A.make ~name:"Line" ~domain:(D.Primitive D.P_string) ();
      A.make ~name:"Parts" ~domain:(D.Class "Component") ~collection:A.Set
        ~refkind:(A.composite ~exclusive:true ~dependent:true ())
        ();
    ];
  let lines = [| "alpha"; "beta"; "gamma" |] in
  for i = 1 to 120 do
    let parts =
      List.init 4 (fun p ->
          Object_manager.create db ~cls:"Component"
            ~attrs:
              [
                ("PartNo", Value.Str (Printf.sprintf "P-%d-%d" i p));
                ("Grams", Value.Int (50 + ((i * 7 + p) mod 200)));
              ]
            ())
    in
    ignore
      (Object_manager.create db ~cls:"Assembly"
         ~attrs:
           [
             ("Name", Value.Str (Printf.sprintf "asm-%03d" i));
             ("Line", Value.Str lines.(i mod 3));
             ("Parts", Value.VSet (List.map (fun p -> Value.Ref p) parts));
           ]
         ()
        : Oid.t)
  done

let () =
  let db = Database.create () in
  build_catalog db;
  let engine = Engine.create db in

  (* A selection over the class extension. *)
  let heavy =
    Expr.Exists ([ "Parts" ], Expr.Cmp (Expr.Gt, [ "Grams" ], Value.Int 240))
  in
  Format.printf "assemblies with a part over 240g: %d@."
    (Engine.count engine ~cls:"Assembly" heavy);

  (* Indexed equality: same answers, different access path. *)
  let on_beta = Expr.Cmp (Expr.Eq, [ "Line" ], Value.Str "beta") in
  Format.printf "plan before indexing: %a@." Engine.pp_plan
    (Engine.explain engine ~cls:"Assembly" on_beta);
  ignore (Engine.add_index engine ~cls:"Assembly" ~attr:"Line" : Orion_query.Index.t);
  Format.printf "plan after indexing:  %a@." Engine.pp_plan
    (Engine.explain engine ~cls:"Assembly" on_beta);
  Format.printf "beta-line assemblies: %d@."
    (Engine.count engine ~cls:"Assembly" on_beta);

  (* Predicates compose with composite-object structure. *)
  let first_beta =
    List.hd (Engine.select engine ~cls:"Assembly" on_beta)
  in
  let part_of_beta = Expr.Component_of first_beta in
  Format.printf "components of one beta assembly: %d@."
    (Engine.count engine ~cls:"Component" part_of_beta);

  (* Save, reopen from the store file, query again. *)
  let path = Filename.temp_file "orion_catalog" ".odb" in
  Persist.save db;
  Store.save_file (Database.store db) path;
  let reopened = Persist.load (Store.load_file path) in
  Sys.remove path;
  let engine2 = Engine.create reopened in
  ignore (Engine.add_index engine2 ~cls:"Assembly" ~attr:"Line" : Orion_query.Index.t);
  Format.printf "after reopen: beta-line assemblies still %d@."
    (Engine.count engine2 ~cls:"Assembly" on_beta);
  Integrity.assert_ok reopened;
  print_endline "integrity: consistent"
