lib/storage/disk.mli:
