module Store = Orion_storage.Store
module Schema = Orion_schema.Schema
module A = Orion_schema.Attribute
module D = Orion_schema.Domain
module W = Orion_storage.Bytes_rw.Writer
module R = Orion_storage.Bytes_rw.Reader

let sync_segments db =
  let store = Database.store db in
  let wanted = Schema.segment_count (Database.schema db) in
  while Store.segment_count store < wanted do
    ignore (Store.new_segment store : Store.segment_id)
  done

let checkpoint db =
  sync_segments db;
  let store = Database.store db in
  (* Families are placed together: an object is followed immediately by
     every object whose clustering hint (§2.3 first [:parent]) names it,
     so the [~near] placement can actually land them on the same page.
     Placing in arbitrary order would interleave families and defeat
     the hint. *)
  let children : Instance.t list Oid.Tbl.t = Oid.Tbl.create 64 in
  let anchors = ref [] in
  Database.iter db (fun inst ->
      match inst.cluster_with with
      | Some parent when Database.exists db parent ->
          let existing =
            match Oid.Tbl.find_opt children parent with Some l -> l | None -> []
          in
          Oid.Tbl.replace children parent (inst :: existing)
      | Some _ | None -> anchors := inst :: !anchors);
  let written = Oid.Tbl.create 64 in
  let rec place_family (inst : Instance.t) near =
    if not (Oid.Tbl.mem written inst.oid) then begin
      Oid.Tbl.add written inst.oid ();
      let data = Codec.encode db inst in
      let segment = Schema.segment_of_class (Database.schema db) inst.cls in
      let rid =
        match inst.rid with
        | Some rid -> Store.update store rid data
        | None -> Store.insert store ~segment ?near data
      in
      inst.rid <- Some rid;
      let family =
        match Oid.Tbl.find_opt children inst.oid with Some l -> l | None -> []
      in
      List.iter (fun child -> place_family child (Some rid)) family
    end
  in
  List.iter (fun inst -> place_family inst None) !anchors;
  (* Clustering cycles (mutual hints) leave no anchor; place leftovers. *)
  Database.iter db (fun inst ->
      if not (Oid.Tbl.mem written inst.oid) then place_family inst None)

let read_cold db oid =
  match Database.find db oid with
  | None -> None
  | Some inst -> (
      match inst.rid with
      | None -> None
      | Some rid ->
          Option.map Codec.decode (Store.read (Database.store db) rid))

let walk_cold db root =
  let schema = Database.schema db in
  let seen = Oid.Tbl.create 64 in
  let count = ref 0 in
  let queue = Queue.create () in
  Queue.add root queue;
  while not (Queue.is_empty queue) do
    let oid = Queue.pop queue in
    if not (Oid.Tbl.mem seen oid) then begin
      Oid.Tbl.add seen oid ();
      match read_cold db oid with
      | None -> ()
      | Some image ->
          incr count;
          (match image.kind with
          | Instance.Generic gi -> List.iter (fun v -> Queue.add v queue) gi.versions
          | Instance.Plain | Instance.Version _ ->
              List.iter
                (fun (a : A.t) ->
                  if A.is_composite a then
                    match Instance.attr image a.name with
                    | Some v -> List.iter (fun c -> Queue.add c queue) (Value.refs v)
                    | None -> ())
                (Schema.effective_attributes schema image.cls))
    end
  done;
  !count

let reload db =
  let store = Database.store db in
  let insts = Database.fold db ~init:[] ~f:(fun acc inst -> inst :: acc) in
  List.iter
    (fun (inst : Instance.t) ->
      match inst.rid with
      | None ->
          failwith
            (Format.asprintf "Persist.reload: %a was never checkpointed" Oid.pp
               inst.oid)
      | Some rid -> (
          match Store.read store rid with
          | None ->
              failwith
                (Format.asprintf "Persist.reload: record of %a is gone" Oid.pp
                   inst.oid)
          | Some data ->
              let fresh = Codec.decode data in
              fresh.rid <- Some rid;
              fresh.cluster_with <- inst.cluster_with;
              Database.add db fresh))
    insts


let compact db =
  sync_segments db;
  let store = Database.store db in
  let moves = Hashtbl.create 64 in
  for seg = 0 to Store.segment_count store - 1 do
    List.iter
      (fun (old_rid, new_rid) -> Hashtbl.replace moves old_rid new_rid)
      (Store.compact_segment store seg)
  done;
  let moved = ref 0 in
  Database.iter db (fun inst ->
      match inst.Instance.rid with
      | Some rid -> (
          match Hashtbl.find_opt moves rid with
          | Some fresh ->
              inst.Instance.rid <- Some fresh;
              incr moved
          | None -> ())
      | None -> ());
  !moved

(* Full save / load -------------------------------------------------------- *)

let catalog_version = 1

let write_domain w = function
  | D.Primitive D.P_integer -> W.u8 w 0
  | D.Primitive D.P_float -> W.u8 w 1
  | D.Primitive D.P_string -> W.u8 w 2
  | D.Primitive D.P_boolean -> W.u8 w 3
  | D.Any -> W.u8 w 4
  | D.Class c ->
      W.u8 w 5;
      W.string w c

let read_domain r =
  match R.u8 r with
  | 0 -> D.Primitive D.P_integer
  | 1 -> D.Primitive D.P_float
  | 2 -> D.Primitive D.P_string
  | 3 -> D.Primitive D.P_boolean
  | 4 -> D.Any
  | 5 -> D.Class (R.string r)
  | tag -> raise (R.Corrupt (Printf.sprintf "bad domain tag %d" tag))

let write_attribute w (a : A.t) =
  W.string w a.name;
  write_domain w a.domain;
  W.bool w (a.collection = A.Set);
  (match a.refkind with
  | A.Weak -> W.u8 w 0
  | A.Composite { exclusive; dependent } ->
      W.u8 w 1;
      W.bool w exclusive;
      W.bool w dependent);
  match a.source with
  | None -> W.bool w false
  | Some s ->
      W.bool w true;
      W.string w s

let read_attribute r : A.t =
  let name = R.string r in
  let domain = read_domain r in
  let collection = if R.bool r then A.Set else A.Single in
  let refkind =
    match R.u8 r with
    | 0 -> A.Weak
    | 1 ->
        let exclusive = R.bool r in
        let dependent = R.bool r in
        A.Composite { exclusive; dependent }
    | tag -> raise (R.Corrupt (Printf.sprintf "bad refkind tag %d" tag))
  in
  let source = if R.bool r then Some (R.string r) else None in
  { A.name; domain; collection; refkind; source }

let write_list w f items =
  W.int w (List.length items);
  List.iter (f w) items

let read_list r f =
  let n = R.int r in
  List.init n (fun _ -> f r)

let write_rid w (rid : Store.rid) =
  W.int w rid.Store.segment;
  W.int w rid.Store.page;
  W.int w rid.Store.slot

let read_rid r : Store.rid =
  let segment = R.int r in
  let page = R.int r in
  let slot = R.int r in
  { Store.segment; page; slot }

let save db =
  (* A crash anywhere before the closing notification leaves the
     checkpoint bracket open in the log; recovery discards the
     half-applied store writes it covers.  Deliberately no Fun.protect:
     an aborted save must NOT seal the bracket. *)
  Database.notify_checkpoint db Database.Ckpt_begin;
  checkpoint db;
  let w = W.create () in
  W.int w catalog_version;
  W.bool w (Database.rref_repr db = Database.External);
  W.bool w (Database.acyclic db);
  let next_oid, clock = Database.counters db in
  W.int w next_oid;
  W.int w clock;
  W.int w (Database.current_cc db);
  (* Schema. *)
  let x = Schema.export (Database.schema db) in
  write_list w
    (fun w (name, id) ->
      W.string w name;
      W.int w id)
    x.Schema.x_segments;
  W.int w x.Schema.x_next_segment;
  write_list w
    (fun w (name, supers, versionable, segment, attrs) ->
      W.string w name;
      write_list w (fun w s -> W.string w s) supers;
      W.bool w versionable;
      W.int w segment;
      write_list w write_attribute attrs)
    x.Schema.x_classes;
  (* Object directory. *)
  let entries = Database.fold db ~init:[] ~f:(fun acc inst -> inst :: acc) in
  write_list w
    (fun w (inst : Instance.t) ->
      W.int w (Oid.to_int inst.oid);
      (match inst.rid with
      | Some rid -> write_rid w rid
      | None -> failwith "Persist.save: object missing after checkpoint");
      (match inst.cluster_with with
      | None -> W.bool w false
      | Some p ->
          W.bool w true;
          W.int w (Oid.to_int p));
      match Database.rref_repr db with
      | Database.Inline -> W.int w 0
      | Database.External ->
          write_list w
            (fun w (rref : Rref.t) ->
              W.int w (Oid.to_int rref.Rref.parent);
              W.string w rref.Rref.attr;
              W.bool w rref.Rref.exclusive;
              W.bool w rref.Rref.dependent)
            (Database.rrefs db inst.oid))
    entries;
  Store.write_catalog (Database.store db) (W.contents w);
  Database.notify_checkpoint db Database.Ckpt_end

(* The catalog blob, parsed but not yet materialized into a database —
   shared between [load] and the offline checker, which must reason
   about a store's schema and directory without constructing a live
   Database.t. *)

type catalog_entry = {
  ce_oid : Oid.t;
  ce_rid : Store.rid;
  ce_cluster_with : Oid.t option;
  ce_rrefs : Rref.t list;
}

type catalog = {
  cat_external_rrefs : bool;
  cat_acyclic : bool;
  cat_next_oid : int;
  cat_clock : int;
  cat_cc : int;
  cat_schema : Schema.exported;
  cat_entries : catalog_entry list;
}

let decode_catalog data =
  let r = R.of_bytes data in
  let version = R.int r in
  if version <> catalog_version then
    raise (R.Corrupt (Printf.sprintf "catalog version %d" version));
  let cat_external_rrefs = R.bool r in
  let cat_acyclic = R.bool r in
  let cat_next_oid = R.int r in
  let cat_clock = R.int r in
  let cat_cc = R.int r in
  let x_segments =
    read_list r (fun r ->
        let name = R.string r in
        let id = R.int r in
        (name, id))
  in
  let x_next_segment = R.int r in
  let x_classes =
    read_list r (fun r ->
        let name = R.string r in
        let supers = read_list r (fun r -> R.string r) in
        let versionable = R.bool r in
        let segment = R.int r in
        let attrs = read_list r read_attribute in
        (name, supers, versionable, segment, attrs))
  in
  let cat_entries =
    read_list r (fun r ->
        let ce_oid = Oid.of_int (R.int r) in
        let ce_rid = read_rid r in
        let ce_cluster_with =
          if R.bool r then Some (Oid.of_int (R.int r)) else None
        in
        let ce_rrefs =
          read_list r (fun r ->
              let parent = Oid.of_int (R.int r) in
              let attr = R.string r in
              let exclusive = R.bool r in
              let dependent = R.bool r in
              { Rref.parent; attr; exclusive; dependent })
        in
        { ce_oid; ce_rid; ce_cluster_with; ce_rrefs })
  in
  {
    cat_external_rrefs;
    cat_acyclic;
    cat_next_oid;
    cat_clock;
    cat_cc;
    cat_schema = { Schema.x_classes; x_segments; x_next_segment };
    cat_entries;
  }

let load ?rref_repr ?acyclic store =
  match Store.read_catalog store with
  | None -> failwith "Persist.load: store has no catalog"
  | Some data ->
      let cat =
        try decode_catalog data
        with R.Corrupt msg -> failwith ("Persist.load: " ^ msg)
      in
      ignore rref_repr;
      ignore acyclic;
      let db =
        Database.create
          ~rref_repr:
            (if cat.cat_external_rrefs then Database.External
             else Database.Inline)
          ~acyclic:cat.cat_acyclic ~store ()
      in
      Database.restore_counters db ~next_oid:cat.cat_next_oid
        ~clock:cat.cat_clock;
      Database.set_current_cc db cat.cat_cc;
      Schema.import_into (Database.schema db) cat.cat_schema;
      List.iter
        (fun e ->
          match Store.read store e.ce_rid with
          | None ->
              failwith
                (Format.asprintf "Persist.load: record of %a is gone" Oid.pp
                   e.ce_oid)
          | Some record ->
              let inst = Codec.decode record in
              inst.Instance.rid <- Some e.ce_rid;
              inst.Instance.cluster_with <- e.ce_cluster_with;
              Database.add db inst;
              if cat.cat_external_rrefs then
                Database.set_rrefs db e.ce_oid e.ce_rrefs)
        cat.cat_entries;
      db
