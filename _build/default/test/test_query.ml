(* Tests for Orion_query: path resolution, predicate evaluation,
   select with and without indexes, and index maintenance under
   mutation, deletion and transaction rollback. *)

open Orion_core
module A = Orion_schema.Attribute
module D = Orion_schema.Domain
module Schema = Orion_schema.Schema
module Expr = Orion_query.Expr
module Index = Orion_query.Index
module Engine = Orion_query.Engine
module Eval = Orion_dsl.Eval

let oid = Alcotest.testable Oid.pp Oid.equal

(* A small dealership: vehicles with a body and a set of tires. *)
let fixture () =
  let db = Database.create () in
  let define ?superclasses name attrs =
    ignore
      (Schema.define (Database.schema db) ?superclasses ~name ~attributes:attrs ()
        : Orion_schema.Class_def.t)
  in
  define "Part"
    [
      A.make ~name:"Name" ~domain:(D.Primitive D.P_string) ();
      A.make ~name:"Weight" ~domain:(D.Primitive D.P_integer) ();
    ];
  define "Vehicle"
    [
      A.make ~name:"Color" ~domain:(D.Primitive D.P_string) ();
      A.make ~name:"Doors" ~domain:(D.Primitive D.P_integer) ();
      A.make ~name:"Body" ~domain:(D.Class "Part")
        ~refkind:(A.composite ~exclusive:true ~dependent:false ())
        ();
      A.make ~name:"Tires" ~domain:(D.Class "Part") ~collection:A.Set
        ~refkind:(A.composite ~exclusive:true ~dependent:false ())
        ();
    ];
  define ~superclasses:[ "Vehicle" ] "Truck"
    [ A.make ~name:"Payload" ~domain:(D.Primitive D.P_integer) () ];
  db

let part db name weight =
  Object_manager.create db ~cls:"Part"
    ~attrs:[ ("Name", Value.Str name); ("Weight", Value.Int weight) ]
    ()

let vehicle db ?(cls = "Vehicle") ~color ~doors ?body ?(tires = []) () =
  let attrs =
    [ ("Color", Value.Str color); ("Doors", Value.Int doors) ]
    @ (match body with Some b -> [ ("Body", Value.Ref b) ] | None -> [])
    @
    match tires with
    | [] -> []
    | ts -> [ ("Tires", Value.VSet (List.map (fun t -> Value.Ref t) ts)) ]
  in
  Object_manager.create db ~cls ~attrs ()

let dealership () =
  let db = fixture () in
  let body1 = part db "sedan body" 300 in
  let body2 = part db "wagon body" 380 in
  let t1 = part db "slick" 9 and t2 = part db "winter" 11 in
  let red = vehicle db ~color:"red" ~doors:4 ~body:body1 ~tires:[ t1 ] () in
  let blue = vehicle db ~color:"blue" ~doors:2 ~body:body2 ~tires:[ t2 ] () in
  let truck = vehicle db ~cls:"Truck" ~color:"red" ~doors:2 () in
  Object_manager.write_attr db truck "Payload" (Value.Int 1200);
  (db, red, blue, truck)

let test_path_resolution () =
  let db, red, _, _ = dealership () in
  Alcotest.(check int) "direct attr" 1
    (List.length (Expr.resolve_path db red [ "Color" ]));
  (match Expr.resolve_path db red [ "Body"; "Name" ] with
  | [ Value.Str "sedan body" ] -> ()
  | vs ->
      Alcotest.failf "unexpected: %s"
        (String.concat "," (List.map Value.to_string vs)));
  Alcotest.(check int) "set fan-out" 1
    (List.length (Expr.resolve_path db red [ "Tires"; "Weight" ]));
  Alcotest.(check int) "missing path" 0
    (List.length (Expr.resolve_path db red [ "Nope"; "X" ]))

let test_eval_basics () =
  let db, red, blue, truck = dealership () in
  let eval o e = Expr.eval db o e in
  Alcotest.(check bool) "eq" true (eval red (Expr.Cmp (Expr.Eq, [ "Color" ], Value.Str "red")));
  Alcotest.(check bool) "neq" true (eval blue (Expr.Cmp (Expr.Neq, [ "Color" ], Value.Str "red")));
  Alcotest.(check bool) "lt" true (eval blue (Expr.Cmp (Expr.Lt, [ "Doors" ], Value.Int 3)));
  Alcotest.(check bool) "nested cmp" true
    (eval red (Expr.Cmp (Expr.Ge, [ "Body"; "Weight" ], Value.Int 300)));
  Alcotest.(check bool) "no coercion" false
    (eval red (Expr.Cmp (Expr.Eq, [ "Doors" ], Value.Str "4")));
  Alcotest.(check bool) "has" true (eval red (Expr.Has [ "Body" ]));
  Alcotest.(check bool) "has missing" false (eval truck (Expr.Has [ "Body" ]));
  Alcotest.(check bool) "in_class self" true (eval truck (Expr.In_class ([], "Vehicle")));
  Alcotest.(check bool) "in_class nested" true
    (eval red (Expr.In_class ([ "Body" ], "Part")));
  Alcotest.(check bool) "and/or/not" true
    (eval red
       (Expr.And
          [
            Expr.Or
              [
                Expr.Cmp (Expr.Eq, [ "Color" ], Value.Str "green");
                Expr.Cmp (Expr.Eq, [ "Color" ], Value.Str "red");
              ];
            Expr.Not (Expr.Cmp (Expr.Eq, [ "Doors" ], Value.Int 2));
          ]))

let test_eval_quantifiers_and_refs () =
  let db, red, blue, _ = dealership () in
  Alcotest.(check bool) "exists" true
    (Expr.eval db red
       (Expr.Exists ([ "Tires" ], Expr.Cmp (Expr.Lt, [ "Weight" ], Value.Int 10))));
  Alcotest.(check bool) "forall true" true
    (Expr.eval db blue
       (Expr.Forall ([ "Tires" ], Expr.Cmp (Expr.Gt, [ "Weight" ], Value.Int 10))));
  Alcotest.(check bool) "forall vacuous" true
    (Expr.eval db red (Expr.Forall ([ "Body"; "Tires" ], Expr.Const false)));
  let body = List.hd (Expr.resolve_path db red [ "Body" ]) in
  (match body with
  | Value.Ref b ->
      Alcotest.(check bool) "refers" true (Expr.eval db red (Expr.Refers ([ "Body" ], b)));
      Alcotest.(check bool) "component_of" true (Expr.eval db b (Expr.Component_of red))
  | _ -> Alcotest.fail "expected a reference")

let test_select_scan () =
  let db, red, _, truck = dealership () in
  let engine = Engine.create db in
  Alcotest.(check (list oid)) "reds incl. subclass" [ red; truck ]
    (Engine.select engine ~cls:"Vehicle" (Expr.Cmp (Expr.Eq, [ "Color" ], Value.Str "red")));
  Alcotest.(check (list oid)) "exact class only" [ red ]
    (Engine.select engine ~cls:"Vehicle" ~subclasses:false
       (Expr.Cmp (Expr.Eq, [ "Color" ], Value.Str "red")));
  Alcotest.(check int) "everything" 3
    (Engine.count engine ~cls:"Vehicle" (Expr.Const true));
  Alcotest.(check (list oid)) "subclass extension" [ truck ]
    (Engine.select engine ~cls:"Truck" (Expr.Const true))

let test_select_with_index_matches_scan () =
  let db, _, _, _ = dealership () in
  let engine_scan = Engine.create db in
  let engine_idx = Engine.create db in
  ignore (Engine.add_index engine_idx ~cls:"Vehicle" ~attr:"Color" : Index.t);
  let expr =
    Expr.And
      [
        Expr.Cmp (Expr.Eq, [ "Color" ], Value.Str "red");
        Expr.Cmp (Expr.Ge, [ "Doors" ], Value.Int 2);
      ]
  in
  Alcotest.(check bool) "index plan chosen" true
    (Engine.explain engine_idx ~cls:"Vehicle" expr
    = Engine.Index_lookup { cls = "Vehicle"; attr = "Color" });
  Alcotest.(check bool) "scan plan without index" true
    (Engine.explain engine_scan ~cls:"Vehicle" expr = Engine.Scan);
  Alcotest.(check (list oid)) "same answers"
    (Engine.select engine_scan ~cls:"Vehicle" expr)
    (Engine.select engine_idx ~cls:"Vehicle" expr)

let test_index_maintenance () =
  let db, red, blue, _ = dealership () in
  let engine = Engine.create db in
  let idx = Engine.add_index engine ~cls:"Vehicle" ~attr:"Color" in
  Alcotest.(check int) "initial postings" 3 (Index.entry_count idx);
  (* Update: red -> green moves buckets. *)
  Object_manager.write_attr db red "Color" (Value.Str "green");
  Alcotest.(check (list oid)) "green found" [ red ] (Index.lookup idx (Value.Str "green"));
  Alcotest.(check bool) "red bucket shrunk" true
    (not (List.mem red (Index.lookup idx (Value.Str "red"))));
  (* New object: indexed on creation. *)
  let extra = vehicle db ~color:"green" ~doors:5 () in
  Alcotest.(check (list oid)) "creation indexed" [ red; extra ]
    (Index.lookup idx (Value.Str "green"));
  (* Deletion: unindexed. *)
  Object_manager.delete db blue;
  Alcotest.(check (list oid)) "deletion removed" []
    (Index.lookup idx (Value.Str "blue"));
  (* Dropped index stops tracking. *)
  Index.drop idx;
  Object_manager.write_attr db extra "Color" (Value.Str "black");
  Alcotest.(check (list oid)) "stale after drop" [ red; extra ]
    (Index.lookup idx (Value.Str "green"))

let test_index_survives_rollback () =
  let db, red, _, truck = dealership () in
  let engine = Engine.create db in
  let idx = Engine.add_index engine ~cls:"Vehicle" ~attr:"Color" in
  let manager = Orion_tx.Tx_manager.create db in
  let tx = Orion_tx.Tx_manager.begin_tx manager in
  Orion_tx.Tx_manager.write_attr manager tx red "Color" (Value.Str "yellow");
  Alcotest.(check (list oid)) "during tx" [ red ] (Index.lookup idx (Value.Str "yellow"));
  ignore (Orion_tx.Tx_manager.abort manager tx : int list);
  Alcotest.(check (list oid)) "rollback restores bucket" [ red; truck ]
    (Index.lookup idx (Value.Str "red"));
  Alcotest.(check (list oid)) "yellow gone" [] (Index.lookup idx (Value.Str "yellow"))

let test_select_through_dsl () =
  let env = Eval.create_env () in
  ignore
    (Eval.eval_program env
       {|
(make-class 'Part :attributes ((Name :domain String)))
(make-class 'Car :attributes (
  (Color :domain String)
  (Body :domain Part :composite true :exclusive true :dependent nil)))
(setq b1 (make Part :Name "coupe"))
(setq c1 (make Car :Color "red" :Body b1))
(setq c2 (make Car :Color "blue"))
(create-index Car Color)
|}
      : Eval.v list);
  let c1 = Option.get (Eval.lookup env "c1") in
  (match Eval.eval_string env {|(select Car (= Color "red"))|} with
  | Eval.Objs [ found ] -> Alcotest.(check oid) "found c1" c1 found
  | other -> Alcotest.failf "unexpected %a" (Eval.pp_v env) other);
  (match Eval.eval_string env {|(explain Car (= Color "red"))|} with
  | Eval.Str "index Car.Color" -> ()
  | other -> Alcotest.failf "unexpected plan %a" (Eval.pp_v env) other);
  (match Eval.eval_string env {|(select Car (= Body.Name "coupe"))|} with
  | Eval.Objs [ found ] -> Alcotest.(check oid) "nested path" c1 found
  | other -> Alcotest.failf "unexpected %a" (Eval.pp_v env) other);
  match Eval.eval_string env {|(count-select Car (has Body))|} with
  | Eval.Num 1 -> ()
  | other -> Alcotest.failf "unexpected count %a" (Eval.pp_v env) other

(* Property: for random contents, indexed select == scan select. *)
let prop_index_equals_scan =
  QCheck.Test.make ~name:"indexed select equals scan" ~count:50
    QCheck.(make Gen.(list_size (int_bound 40) (pair (int_bound 3) (int_bound 5))))
    (fun ops ->
      let db = fixture () in
      let engine_idx = Engine.create db in
      ignore (Engine.add_index engine_idx ~cls:"Vehicle" ~attr:"Doors" : Index.t);
      let engine_scan = Engine.create db in
      let vehicles = ref [] in
      List.iter
        (fun (op, x) ->
          vehicles := List.filter (Database.exists db) !vehicles;
          try
            match op with
            | 0 | 1 ->
                vehicles :=
                  vehicle db ~color:(string_of_int x) ~doors:(x mod 4) () :: !vehicles
            | 2 -> (
                match !vehicles with
                | v :: _ -> Object_manager.write_attr db v "Doors" (Value.Int (x mod 4))
                | [] -> ())
            | _ -> (
                match !vehicles with
                | v :: rest ->
                    Object_manager.delete db v;
                    vehicles := rest
                | [] -> ())
          with Core_error.Error _ -> ())
        ops;
      List.for_all
        (fun doors ->
          let expr = Expr.Cmp (Expr.Eq, [ "Doors" ], Value.Int doors) in
          Engine.select engine_idx ~cls:"Vehicle" expr
          = Engine.select engine_scan ~cls:"Vehicle" expr)
        [ 0; 1; 2; 3 ])

let () =
  Alcotest.run "orion_query"
    [
      ( "expressions",
        [
          Alcotest.test_case "path resolution" `Quick test_path_resolution;
          Alcotest.test_case "basics" `Quick test_eval_basics;
          Alcotest.test_case "quantifiers and refs" `Quick
            test_eval_quantifiers_and_refs;
        ] );
      ( "select",
        [
          Alcotest.test_case "scan" `Quick test_select_scan;
          Alcotest.test_case "index = scan" `Quick test_select_with_index_matches_scan;
          Alcotest.test_case "through the DSL" `Quick test_select_through_dsl;
        ] );
      ( "indexes",
        [
          Alcotest.test_case "maintenance" `Quick test_index_maintenance;
          Alcotest.test_case "rollback" `Quick test_index_survives_rollback;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_index_equals_scan ]);
    ]
