(** Group commit: one WAL sync for many commits.

    PR2 measured the WAL at ~1.2x per-commit overhead, almost all of it
    in the per-commit sync.  The committer amortizes it: commits
    submitted within a {e batching window} are written as one batch —
    every member's after-image records, one sealing record, one
    {!Wal.sync}.

    {2 Crash safety}

    A batch of K > 1 commits is sealed by a single
    {!Wal_record.Commit_group} record.  Until the seal is on the log,
    none of the members' [Obj_*] records are covered by any commit
    record, so a crash (or torn write) anywhere inside the batch
    replays as {e zero} commits — the PR2 redo-only invariant, never a
    partial batch.  A batch of one seals with a plain
    {!Wal_record.Commit}, byte-identical to the direct
    {!Wal.log_commit} path.

    {2 Protocol}

    The submitting shard must have moved the transaction into the
    [Committing] state ({!Orion_tx.Tx_manager.submit_commit}) first:
    its locks stay held — strict 2PL across the sync — and it can no
    longer be aborted.  [notify] is called exactly once from the
    committer thread with the outcome; the shard then finishes the
    transaction ([complete_commit] / [commit_failed]) and replies to
    the client.  Durability rule unchanged: the client sees the commit
    acknowledged only after the batch's sync returned. *)

type t

val create :
  ?window:float ->
  ?on_sealed:(clock:int -> Wal_record.t list -> unit) ->
  Wal.t ->
  t
(** Start the committer thread.  [window] (seconds, default 2ms) is how
    long the committer holds a batch open for stragglers after the
    first commit arrives.  [on_sealed] runs on the committer thread
    right after a batch's seal became durable and {e before} any member
    is notified, with the batch's seal clock and every member's
    records: the MVCC version store publishes there, so the whole batch
    becomes visible to snapshot readers atomically, no later than its
    locks release.  It must not raise. *)

val submit :
  t ->
  tx:int ->
  records:Wal_record.t list ->
  next_oid:int ->
  clock:int ->
  cc:int ->
  eager:bool ->
  notify:(ok:bool -> err:string -> unit) ->
  unit
(** Enqueue one commit.  [eager] asserts no other in-flight transaction
    could join the batch (the submitter holds the service lock and sees
    every open transaction), letting the committer skip the window —
    group commit then adds no latency to a lone client.  [notify] runs
    on the committer thread and must only hand the outcome off (e.g.
    post to a shard inbox).
    @raise Invalid_argument after {!shutdown}/{!kill}. *)

val pending_count : t -> int
(** Commits submitted but not yet durable (including a batch being
    flushed right now). *)

val quiescent : t -> bool
(** [pending_count t = 0] — checkpoints must only run here. *)

val shutdown : t -> unit
(** Drain: flush any pending batch, then stop and join the committer
    thread.  Part of graceful server stop. *)

val kill : t -> unit
(** Simulated kill -9: stop without flushing — submitted-but-unsynced
    commits are lost, exactly as un-acknowledged commits should be. *)
