(** Attribute specifications.

    §2.1 distinguishes five reference types between a pair of objects;
    which of them an attribute carries is declared on the attribute
    (§2.3): [:composite], [:exclusive] and [:dependent], the latter two
    defaulting to [true] for compatibility with the [KIM87b] model
    (whose only composite reference was the dependent exclusive one). *)

type reference_kind =
  | Weak  (** the plain object reference, no IS-PART-OF semantics *)
  | Composite of { exclusive : bool; dependent : bool }

type collection = Single | Set  (** [Set] renders the paper's [set-of] domains *)

type t = {
  name : string;
  domain : Domain.t;
  collection : collection;
  refkind : reference_kind;
  source : string option;
      (** class that introduced the attribute, when inherited *)
}

val make :
  ?collection:collection ->
  ?refkind:reference_kind ->
  ?source:string ->
  name:string ->
  domain:Domain.t ->
  unit ->
  t
(** Defaults: [Single], [Weak]. *)

val composite : ?dependent:bool -> ?exclusive:bool -> unit -> reference_kind
(** Composite reference with the paper's defaults
    ([exclusive = true], [dependent = true]). *)

val is_composite : t -> bool
val is_exclusive : t -> bool
(** [false] for weak attributes. *)

val is_shared : t -> bool
(** Composite and not exclusive. *)

val is_dependent : t -> bool
(** [false] for weak attributes. *)

val pp : Format.formatter -> t -> unit
val pp_refkind : Format.formatter -> reference_kind -> unit
