test/test_model.ml: Alcotest Core_error Database Instance Integrity List Object_manager Oid Orion_core Orion_schema Printf QCheck QCheck_alcotest Traversal
