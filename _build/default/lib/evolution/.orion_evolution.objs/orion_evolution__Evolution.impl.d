lib/evolution/evolution.ml: Change Core_error Database Format Fun Instance List Object_manager Oid Operation_log Orion_core Orion_schema Rref String Value
