(** Lockdep: the runtime lock-discipline checker behind
    {!Orion_util.Omutex} ([--lockdep] / [ORION_LOCKDEP=1]).

    Linux-lockdep in spirit: every wrapped acquisition feeds a
    per-thread held-set and a global may-precede graph over lock
    {e classes}, so an ordering bug is reported the first time the two
    orders are ever {e observed} — the run does not have to deadlock.
    Findings reuse {!Schema_analysis.finding}, so [orion lockdep-check]
    speaks the same severity-sorted sexp vocabulary as [orion analyze].

    Detectors:
    - {b rank-inversion} (error): a class acquired while holding a
      strictly higher-ranked one.
    - {b lock-order-inversion} (error): a new may-precede edge closes a
      cycle among equal-ranked classes; the witness names both
      acquisition sites of this observation and of the first
      contradicting one.
    - {b recursive-lock} (error): same class, same instance,
      re-acquired.
    - {b merged-search-protocol} (error): more than one instance of an
      ascending-region class held outside its region, or instances
      taken out of ascending order inside it.
    - {b same-class-nesting} (error): two instances of a class with no
      ascending region held at once.
    - {b held-across-blocking} (warning): a no-block class held across
      a declared blocking operation, outside any
      {!Orion_util.Omutex.allow_blocking} bracket. *)

type engine
(** One checker instance: held-sets, may-precede graph, findings.
    The installed global engine consumes live {!Orion_util.Omutex}
    events; private engines serve tests and trace replay. *)

val create_engine : ?trace:string -> unit -> engine
(** [trace] appends a replayable event log to the file, exactly as the
    installed engine's [--lockdep-trace] does ({!flush_trace} forces
    the buffered lines out). *)

val flush_trace : engine -> unit

val handle : engine -> key:string -> Orion_util.Omutex.event -> unit
(** Feed one event attributed to thread [key] (any stable token; live
    installation uses ["pid.domain.thread"]).  Tests synthesize events
    under distinct keys to model cross-thread interleavings
    deterministically. *)

val self_key : unit -> string
(** The calling thread's key, ["pid.domain.thread"]. *)

val tracer_of : engine -> Orion_util.Omutex.event -> unit
(** [handle] pre-applied with {!self_key} — the function a test passes
    to {!Orion_util.Omutex.set_tracer} to watch real lock traffic with
    a private engine. *)

val engine_findings : engine -> Schema_analysis.finding list
(** Deduplicated findings so far, most severe first. *)

val edge_count : engine -> int
(** Distinct may-precede edges observed (the [lockdep.edges] gauge). *)

(** {1 Global installation} *)

val install : ?trace:string -> unit -> unit
(** Install the global engine as the Omutex tracer, register
    [lockdep.violations]/[lockdep.classes]/[lockdep.edges] with the
    metrics registry, and hook process exit: findings dump to stderr
    and force the exit code to their {!exit_code} — how CI fails a
    lockdep-enabled suite on any violation.  [trace] appends a
    replayable event log to the file ({!check_trace} reads it back).
    Idempotent. *)

val installed : unit -> engine option
val findings : unit -> Schema_analysis.finding list
(** Findings of the installed engine ([[]] when not installed). *)

val install_from_env : unit -> unit
(** {!install} when [ORION_LOCKDEP] is set truthy (or
    [ORION_LOCKDEP_TRACE] names a trace file); a no-op otherwise.
    Called by every engine entry point (CLI, test mains), so the env
    vars work uniformly. *)

(** {1 Offline replay} *)

val check_trace : string -> Schema_analysis.finding list
(** Replay a [--lockdep-trace] file through a fresh engine.  Raises
    [Failure] with file/line context on an unparseable line. *)

val exit_code : Schema_analysis.finding list -> int
(** The analyze/fsck/lockdep-check contract: 2 if any error, 1 if any
    warning, 0 clean. *)
