lib/query/engine.ml: Database Expr Format Index Instance List Oid Orion_core Orion_schema String
