open Orion_core
module A = Orion_schema.Attribute
module Schema = Orion_schema.Schema
module E = Core_error

let not_versionable oid = E.raise_error (E.Not_versionable oid)

let is_versionable db oid =
  match Database.find db oid with
  | None -> false
  | Some inst -> (
      match inst.kind with
      | Instance.Generic _ | Instance.Version _ -> true
      | Instance.Plain -> false)

let generic_of db oid =
  let inst = Database.get db oid in
  match inst.kind with
  | Instance.Generic _ -> oid
  | Instance.Version vi -> vi.generic
  | Instance.Plain -> not_versionable oid

let generic_info_exn db oid =
  match Instance.generic_info (Database.get db (generic_of db oid)) with
  | Some gi -> gi
  | None -> not_versionable oid

let versions db oid = (generic_info_exn db oid).versions

let version_info_exn db oid =
  match Instance.version_info (Database.get db oid) with
  | Some vi -> vi
  | None -> not_versionable oid

let version_no db oid = (version_info_exn db oid).version_no

let derived_from db oid = (version_info_exn db oid).derived_from

let default_version db oid =
  let goid = generic_of db oid in
  match Traversal.default_version db goid with
  | Some v -> v
  | None ->
      E.raise_error
        (E.Version_error { oid = goid; reason = "no live version instance" })

let set_default_version db oid version =
  let gi = generic_info_exn db oid in
  (match version with
  | Some v when not (List.exists (Oid.equal v) gi.versions) ->
      E.raise_error
        (E.Version_error
           { oid = v; reason = "not a version instance of this object" })
  | Some _ | None -> ());
  gi.user_default <- version;
  (* Dynamic references to this generic now resolve differently; the
     mutation bypasses the event bus, so tell the edge cache directly. *)
  Database.invalidate_edges db (generic_of db oid)

(* Derivation (Figure 1, rules CV-1X/CV-2X). ------------------------------- *)

(* How one copied reference target translates into the derived version. *)
let translate_ref db ~(spec : A.t) target =
  match Database.find db target with
  | None -> None (* dangling weak residue: do not propagate *)
  | Some target_inst -> (
      if not (A.is_composite spec) then Some target
      else
        match target_inst.kind with
        | Instance.Plain ->
            (* A plain object: an exclusive reference cannot be duplicated
               at all; a shared one can. *)
            if A.is_exclusive spec then None else Some target
        | Instance.Generic _ -> Some target (* dynamic binding copies as is *)
        | Instance.Version vi ->
            if A.is_exclusive spec then
              if A.is_dependent spec then None (* set to Nil *)
              else Some vi.generic (* rebound to the generic, Fig. 1.b *)
            else Some target (* shared static reference copies as is *))

let translate_value db ~spec v =
  match v with
  | Value.Ref target -> (
      match translate_ref db ~spec target with
      | Some target' -> Value.Ref target'
      | None -> Value.Null)
  | Value.VSet elems ->
      Value.VSet
        (List.filter_map
           (fun elem ->
             match elem with
             | Value.Ref target ->
                 Option.map (fun t -> Value.Ref t) (translate_ref db ~spec target)
             | other -> Some other)
           elems)
  | Value.Null | Value.Int _ | Value.Float _ | Value.Str _ | Value.Bool _ -> v

let derive db source =
  let vi = version_info_exn db source in
  let source_inst = Database.get db source in
  let gi = generic_info_exn db source in
  let new_vi : Instance.version_info =
    {
      generic = vi.generic;
      version_no = gi.next_version_no;
      derived_from = Some source;
      created_at = Database.tick db;
    }
  in
  let fresh =
    Object_manager.create_raw db ~cls:source_inst.cls
      ~kind:(Instance.Version new_vi)
  in
  gi.next_version_no <- gi.next_version_no + 1;
  gi.versions <- gi.versions @ [ fresh ];
  let schema = Database.schema db in
  (try
     List.iter
       (fun (name, v) ->
         match Schema.attribute schema source_inst.cls name with
         | None -> ()
         | Some spec ->
             let copied = translate_value db ~spec v in
             if A.is_composite spec then
               List.iter
                 (fun child ->
                   Object_manager.attach_child db ~parent:fresh ~attr:name ~spec
                     ~child)
                 (Value.refs copied);
             Database.write_value db (Database.get db fresh) name copied)
       source_inst.attrs
   with exn ->
     (* Roll the half-built version back. *)
     Object_manager.delete db fresh;
     raise exn);
  fresh

(* Binding changes. ----------------------------------------------------------- *)

let swap_ref db ~holder ~attr ~old_target ~new_target =
  let v = Object_manager.read_attr db holder attr in
  if not (Value.contains_ref v old_target) then
    E.raise_error (E.Not_a_component { child = old_target; parent = holder; attr });
  let v' = Value.add_ref (Value.remove_ref v old_target) new_target in
  Object_manager.write_attr db holder attr v'

let bind_dynamically db ~holder ~attr version =
  let goid = generic_of db version in
  if Oid.equal goid version then
    E.raise_error
      (E.Version_error { oid = version; reason = "already dynamically bound" });
  swap_ref db ~holder ~attr ~old_target:version ~new_target:goid

let bind_statically db ~holder ~attr ~version =
  let goid = generic_of db version in
  swap_ref db ~holder ~attr ~old_target:goid ~new_target:version

(* Derivation hierarchy. ------------------------------------------------------ *)

type tree = { node : Oid.t; no : int; children : tree list }

let derivation_tree db oid =
  let gi = generic_info_exn db oid in
  let infos =
    List.filter_map
      (fun v ->
        match Database.find db v with
        | Some inst -> Option.map (fun vi -> (v, vi)) (Instance.version_info inst)
        | None -> None)
      gi.versions
  in
  let rec build v (vi : Instance.version_info) =
    let children =
      List.filter_map
        (fun (child, (child_vi : Instance.version_info)) ->
          match child_vi.derived_from with
          | Some parent when Oid.equal parent v -> Some (build child child_vi)
          | Some _ | None -> None)
        infos
    in
    { node = v; no = vi.version_no; children }
  in
  List.filter_map
    (fun (v, (vi : Instance.version_info)) ->
      match vi.derived_from with
      | None -> Some (build v vi)
      | Some parent when not (Database.exists db parent) -> Some (build v vi)
      | Some _ -> None)
    infos

let rec pp_tree ppf tree =
  Format.fprintf ppf "@[<v 2>v%d %a%a@]" tree.no Oid.pp tree.node
    (fun ppf children ->
      List.iter (fun child -> Format.fprintf ppf "@,%a" pp_tree child) children)
    tree.children
