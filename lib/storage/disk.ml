exception Crashed

module Obs = Orion_obs.Metrics

type fault_kind = Fail | Torn

type fault = { kind : fault_kind; mutable remaining : int }

type t = {
  page_size : int;
  pages : (int, bytes) Hashtbl.t;
  mutable next_page : int;
  reads : Obs.counter;
  writes : Obs.counter;
  mutable fault : fault option;
  mutable crashed : bool;
  mutable observer : (int -> bytes -> unit) option;
  mutable alloc_observer : (int -> unit) option;
}

type stats = { reads : int; writes : int; allocated : int }

let create ~page_size =
  if page_size < 64 then invalid_arg "Disk.create: page_size too small";
  {
    page_size;
    pages = Hashtbl.create 256;
    next_page = 0;
    reads = Obs.counter "disk.reads";
    writes = Obs.counter "disk.writes";
    fault = None;
    crashed = false;
    observer = None;
    alloc_observer = None;
  }

let page_size t = t.page_size

let set_observer t f = t.observer <- f
let set_alloc_observer t f = t.alloc_observer <- f

let inject_fault t spec =
  t.fault <-
    (match spec with
    | None -> None
    | Some (`Fail_after n) -> Some { kind = Fail; remaining = n }
    | Some (`Torn_after n) -> Some { kind = Torn; remaining = n })

let crashed t = t.crashed

let revive t =
  t.crashed <- false;
  t.fault <- None

let alloc t =
  if t.crashed then raise Crashed;
  let page_no = t.next_page in
  t.next_page <- t.next_page + 1;
  Hashtbl.replace t.pages page_no (Bytes.make t.page_size '\000');
  (match t.alloc_observer with Some f -> f page_no | None -> ());
  page_no

let read t page_no =
  if t.crashed then raise Crashed;
  match Hashtbl.find_opt t.pages page_no with
  | None -> invalid_arg (Printf.sprintf "Disk.read: unallocated page %d" page_no)
  | Some image ->
      Obs.incr t.reads;
      Bytes.copy image

let write t page_no image =
  if t.crashed then raise Crashed;
  if Bytes.length image <> t.page_size then
    invalid_arg "Disk.write: image size mismatch";
  if not (Hashtbl.mem t.pages page_no) then
    invalid_arg (Printf.sprintf "Disk.write: unallocated page %d" page_no);
  (* Write-ahead: the observer (the WAL) sees the full image before the
     "device" gets a chance to fail or tear it. *)
  (match t.observer with Some f -> f page_no image | None -> ());
  (match t.fault with
  | Some f when f.remaining <= 0 ->
      t.crashed <- true;
      (match f.kind with
      | Fail -> ()
      | Torn ->
          (* A torn page: only a prefix of the image reaches the platter
             before the crash; the tail keeps its previous content. *)
          let keep = t.page_size / 3 in
          let target = Hashtbl.find t.pages page_no in
          Bytes.blit image 0 target 0 keep);
      raise Crashed
  | Some f -> f.remaining <- f.remaining - 1
  | None -> ());
  Obs.incr t.writes;
  Hashtbl.replace t.pages page_no (Bytes.copy image)

let stats (t : t) =
  {
    reads = Obs.counter_value t.reads;
    writes = Obs.counter_value t.writes;
    allocated = t.next_page;
  }

let reset_stats (t : t) =
  Obs.reset_counter t.reads;
  Obs.reset_counter t.writes
