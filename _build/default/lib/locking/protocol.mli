(** The composite-object locking protocols of §7.

    [composite_object_locks] renders the paper's protocol: to access a
    composite object, lock the root's class in IS/IX, the root instance
    in S/X, and every component class of the composite class hierarchy
    in ISO/IXO (reached via exclusive references) or ISOS/IXOS (via
    shared references).  A class reachable both ways gets the supremum
    of the two intention modes on both sides (rendered as two locks).

    [instance_locks] is the plain granularity protocol for direct
    instance access: class in IS/IX, instance in S/X.

    [root_locking_locks] is the [GARZ88] algorithm: on direct access to
    a component, lock the roots of the composite objects containing it;
    the locks on those roots implicitly cover all their components.
    {!root_lock_anomaly} reproduces §7's demonstration that the
    algorithm breaks for shared composite references. *)

open Orion_core

type access = Read_ | Update

val lock_for_access : access -> [ `Class | `Instance | `Comp_x | `Comp_s ] -> Lock_mode.t
(** IS/IX, S/X, ISO/IXO, ISOS/IXOS respectively. *)

val composite_object_locks :
  Database.t -> root:Oid.t -> access -> (Lock_table.granule * Lock_mode.t) list

val instance_locks :
  Database.t -> Oid.t -> access -> (Lock_table.granule * Lock_mode.t) list

val acquire_all :
  Lock_table.t ->
  tx:Lock_table.tx_id ->
  (Lock_table.granule * Lock_mode.t) list ->
  [ `Granted | `Blocked of Lock_table.granule * Lock_mode.t ]
(** Acquire in order; stop at (and report) the first blocked request. *)

val compatible_lock_sets :
  (Lock_table.granule * Lock_mode.t) list ->
  (Lock_table.granule * Lock_mode.t) list ->
  ?compat:(Lock_mode.t -> Lock_mode.t -> bool) ->
  unit ->
  bool
(** Could two transactions hold these lock sets simultaneously (the
    F9 experiment's question). *)

(** {1 Hierarchy scans}

    §7 lists S, SIX and X among the legal modes for the root class and
    the component classes: operations over {e all} composite objects of
    a hierarchy.  [hierarchy_scan_locks] renders them: a scan read
    locks the root class and every component class in S; a scan that
    updates some composite objects uses SIX at the root class and
    SIXO/SIXOS at the component classes (the individual roots being
    updated are then X-locked via {!composite_object_locks}); a bulk
    rewrite uses X everywhere. *)

type scan_access =
  | Scan_read
  | Scan_update_some  (** read all composite objects, update a few *)
  | Scan_update_all

val hierarchy_scan_locks :
  Database.t -> root_cls:string -> scan_access -> (Lock_table.granule * Lock_mode.t) list

(** {1 The [GARZ88] root-locking algorithm} *)

val roots_of : Database.t -> Oid.t -> Oid.t list
(** Roots of the composite objects containing the object: its ancestors
    without composite parents (or the object itself when it has none). *)

val root_locking_locks :
  Database.t -> Oid.t -> access -> (Lock_table.granule * Lock_mode.t) list
(** Locks the algorithm takes: the object itself plus S/X on each root. *)

val implicit_coverage :
  Database.t ->
  (Lock_table.granule * Lock_mode.t) list ->
  (Oid.t * Lock_mode.t) list
(** The instance-level locks implied by root locks: every component of
    an S/X-locked root is implicitly locked in that mode. *)

val root_lock_anomaly :
  Database.t ->
  t1:(Lock_table.granule * Lock_mode.t) list ->
  t2:(Lock_table.granule * Lock_mode.t) list ->
  (Oid.t * Lock_mode.t * Lock_mode.t) list
(** Conflicting implicit instance locks two transactions would both
    hold even though the explicit lock sets are disjoint — the §7
    shared-reference anomaly.  Empty for exclusive-only hierarchies. *)
