open Orion_core
module Sexp = Orion_util.Sexp
module A = Orion_schema.Attribute
module D = Orion_schema.Domain
module Schema = Orion_schema.Schema
module VM = Orion_versions.Version_manager
module Evolution = Orion_evolution.Evolution
module Authz = Orion_authz.Authz_manager
module Auth = Orion_authz.Auth
module Expr = Orion_query.Expr
module Engine = Orion_query.Engine
module Notifier = Orion_notify.Notifier

exception Eval_error of string

let fail fmt = Format.kasprintf (fun msg -> raise (Eval_error msg)) fmt

(* The five object mutations, pluggable so a host can route them
   through a transaction (undo capture, WAL after-images) instead of
   straight at the database — the network server does exactly that for
   forms evaluated while the session has an open transaction. *)
type mutator = {
  m_create :
    cls:string ->
    parents:(Oid.t * string) list ->
    attrs:(string * Value.t) list ->
    Oid.t;
  m_write_attr : Oid.t -> string -> Value.t -> unit;
  m_make_component : parent:Oid.t -> attr:string -> child:Oid.t -> unit;
  m_remove_component : parent:Oid.t -> attr:string -> child:Oid.t -> unit;
  m_delete : Oid.t -> unit;
}

type env = {
  db : Database.t;
  evolution : Evolution.t;
  authz : Authz.t;
  query : Engine.t;
  notify : Notifier.t;
  watches : (string, Notifier.watch) Hashtbl.t;
  bindings : (string, Oid.t) Hashtbl.t;
  mutable mutator : mutator option;
}

let create_env ?db () =
  let db = match db with Some db -> db | None -> Database.create () in
  {
    db;
    evolution = Evolution.attach db;
    authz = Authz.create db;
    query = Engine.create db;
    notify = Notifier.create db;
    watches = Hashtbl.create 8;
    bindings = Hashtbl.create 32;
    mutator = None;
  }

let set_mutator env m = env.mutator <- m
let mutator env = env.mutator

let obj_create env ~cls ~parents ~attrs =
  match env.mutator with
  | Some m -> m.m_create ~cls ~parents ~attrs
  | None -> Object_manager.create env.db ~cls ~parents ~attrs ()

let obj_write_attr env oid attr v =
  match env.mutator with
  | Some m -> m.m_write_attr oid attr v
  | None -> Object_manager.write_attr env.db oid attr v

let obj_make_component env ~parent ~attr ~child =
  match env.mutator with
  | Some m -> m.m_make_component ~parent ~attr ~child
  | None -> Object_manager.make_component env.db ~parent ~attr ~child

let obj_remove_component env ~parent ~attr ~child =
  match env.mutator with
  | Some m -> m.m_remove_component ~parent ~attr ~child
  | None -> Object_manager.remove_component env.db ~parent ~attr ~child

let obj_delete env oid =
  match env.mutator with
  | Some m -> m.m_delete oid
  | None -> Object_manager.delete env.db oid

let database env = env.db
let evolution env = env.evolution
let authz env = env.authz
let query env = env.query
let notifier env = env.notify

let bind env name oid = Hashtbl.replace env.bindings name oid

let lookup env name = Hashtbl.find_opt env.bindings name

type v = Obj of Oid.t | Objs of Oid.t list | Bool of bool | Num of int | Str of string | Unit

let name_of env oid =
  Hashtbl.fold
    (fun name bound acc -> if Oid.equal bound oid then Some name else acc)
    env.bindings None

let pp_obj env ppf oid =
  let cls =
    match Database.find env.db oid with
    | Some inst -> ":" ^ inst.Instance.cls
    | None -> ":?"
  in
  match name_of env oid with
  | Some name -> Format.fprintf ppf "%s[%a%s]" name Oid.pp oid cls
  | None -> Format.fprintf ppf "%a%s" Oid.pp oid cls

let pp_v env ppf = function
  | Obj oid -> pp_obj env ppf oid
  | Objs oids ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space (pp_obj env))
        oids
  | Bool b -> Format.pp_print_string ppf (if b then "true" else "nil")
  | Num n -> Format.pp_print_int ppf n
  | Str s -> Format.pp_print_string ppf s
  | Unit -> Format.pp_print_string ppf "ok"

(* Form utilities ------------------------------------------------------------- *)

let unquote = function
  | Sexp.List [ Sexp.Atom "quote"; form ] -> form
  | form -> form

let symbol form =
  match unquote form with
  | Sexp.Atom a -> a
  | other -> fail "expected a symbol, got %s" (Sexp.to_string other)

(* Split [forms] into leading positional arguments and keyword pairs. *)
let kwsplit forms =
  let rec go acc = function
    | [] -> (List.rev acc, [])
    | Sexp.Keyword k :: value :: rest ->
        let _, kws = go [] rest in
        (List.rev acc, (k, unquote value) :: kws)
    | Sexp.Keyword k :: [] -> fail "keyword :%s lacks a value" k
    | form :: rest ->
        let positional, kws = go acc rest in
        (unquote form :: positional, kws)
  in
  let positional, kws = go [] forms in
  (positional, kws)

let kw kws key = List.assoc_opt key kws

let truthy = function
  | None -> false
  | Some form -> Sexp.is_true form

let object_of env form =
  match unquote form with
  | Sexp.Atom name -> (
      match lookup env name with
      | Some oid -> oid
      | None -> fail "unbound object name %s" name)
  | other -> fail "expected an object name, got %s" (Sexp.to_string other)

(* Values ---------------------------------------------------------------------- *)

let rec value_of env form =
  match unquote form with
  | Sexp.Int n -> Value.Int n
  | Sexp.Float f -> Value.Float f
  | Sexp.Str s -> Value.Str s
  | Sexp.Atom "nil" -> Value.Null
  | Sexp.Atom "true" -> Value.Bool true
  | Sexp.Atom "false" -> Value.Bool false
  | Sexp.Atom name -> (
      match lookup env name with
      | Some oid -> Value.Ref oid
      | None -> fail "unbound object name %s" name)
  | Sexp.List elems -> Value.VSet (List.map (value_of env) elems)
  | Sexp.Keyword k -> fail "unexpected keyword :%s in value position" k

(* Domains ----------------------------------------------------------------------- *)

let primitive_domain = function
  | "String" | "string" -> Some (D.Primitive D.P_string)
  | "Integer" | "integer" | "int" -> Some (D.Primitive D.P_integer)
  | "Float" | "float" -> Some (D.Primitive D.P_float)
  | "Boolean" | "boolean" -> Some (D.Primitive D.P_boolean)
  | "any" | "Any" -> Some D.Any
  | _ -> None

let rec domain_of form =
  match unquote form with
  | Sexp.Atom name -> (
      match primitive_domain name with
      | Some d -> (d, A.Single)
      | None -> (D.Class name, A.Single))
  | Sexp.List [ Sexp.Atom "set-of"; inner ] ->
      let d, _ = domain_of inner in
      (d, A.Set)
  | other -> fail "bad domain %s" (Sexp.to_string other)

(* (AttrName :domain D :composite true :exclusive nil :dependent true) *)
let attribute_of form =
  match unquote form with
  | Sexp.List (name_form :: rest) ->
      let name = symbol name_form in
      let _, kws = kwsplit rest in
      let domain, collection =
        match kw kws "domain" with
        | Some d -> domain_of d
        | None -> fail "attribute %s lacks :domain" name
      in
      let refkind =
        if truthy (kw kws "composite") then
          (* Paper defaults: exclusive and dependent both true. *)
          let flag key = match kw kws key with None -> true | Some f -> Sexp.is_true f in
          A.Composite { exclusive = flag "exclusive"; dependent = flag "dependent" }
        else A.Weak
      in
      A.make ~collection ~refkind ~name ~domain ()
  | other -> fail "bad attribute spec %s" (Sexp.to_string other)

(* Commands ------------------------------------------------------------------------ *)

let eval_make_class env forms =
  let positional, kws = kwsplit forms in
  let name =
    match positional with
    | [ name_form ] -> symbol name_form
    | _ -> fail "make-class expects exactly one class name"
  in
  let superclasses =
    match kw kws "superclasses" with
    | None -> []
    | Some form when Sexp.is_nil form -> []
    | Some (Sexp.List supers) -> List.map symbol supers
    | Some (Sexp.Atom super) -> [ super ]
    | Some other -> fail "bad :superclasses %s" (Sexp.to_string other)
  in
  let attributes =
    match kw kws "attributes" with
    | None -> []
    | Some form when Sexp.is_nil form -> []
    | Some (Sexp.List attrs) -> List.map attribute_of attrs
    | Some other -> fail "bad :attributes %s" (Sexp.to_string other)
  in
  let versionable = truthy (kw kws "versionable") in
  let segment =
    match kw kws "segment" with
    | Some (Sexp.Str s) -> Some s
    | Some (Sexp.Atom s) -> Some s
    | Some other -> fail "bad :segment %s" (Sexp.to_string other)
    | None -> None
  in
  ignore
    (Schema.define (Database.schema env.db) ~superclasses ~versionable ?segment
       ~name ~attributes ()
      : Orion_schema.Class_def.t);
  Str name

let parents_of_form env form =
  match unquote form with
  | Sexp.List pairs ->
      List.map
        (fun pair ->
          match unquote pair with
          | Sexp.List [ obj; attr ] -> (object_of env obj, symbol attr)
          | other -> fail "bad :parent entry %s" (Sexp.to_string other))
        pairs
  | other -> fail "bad :parent %s" (Sexp.to_string other)

let eval_make env forms =
  let positional, kws = kwsplit forms in
  let cls =
    match positional with
    | [ cls_form ] -> symbol cls_form
    | _ -> fail "make expects exactly one class name"
  in
  let parents =
    match kw kws "parent" with Some form -> parents_of_form env form | None -> []
  in
  let attrs =
    List.filter_map
      (fun (key, form) ->
        if String.equal key "parent" then None
        else Some (key, value_of env form))
      kws
  in
  Obj (obj_create env ~cls ~parents ~attrs)

(* (components-of Object [ListofClasses] [Exclusive] [Shared] [Level]) *)
let traversal_args env rest =
  let classes = ref None and excl = ref false and shared = ref false and level = ref None in
  let seen_bool = ref 0 in
  List.iter
    (fun form ->
      match unquote form with
      | Sexp.List cls_forms -> classes := Some (List.map symbol cls_forms)
      | Sexp.Int n -> level := Some n
      | Sexp.Atom ("true" | "t") ->
          incr seen_bool;
          if !seen_bool = 1 then excl := true else shared := true
      | Sexp.Atom "nil" -> incr seen_bool
      | other -> fail "bad traversal argument %s" (Sexp.to_string other))
    rest;
  let filter =
    match (!excl, !shared) with
    | true, false -> `Exclusive
    | false, true -> `Shared
    | _ -> `All
  in
  ignore env;
  (!classes, filter, !level)

let eval_traversal env op obj rest =
  let oid = object_of env obj in
  let classes, filter, level = traversal_args env rest in
  match op with
  | `Components -> Objs (Traversal.components_of env.db ?classes ?level ~filter oid)
  | `Parents -> Objs (Traversal.parents_of env.db ?classes ~filter oid)
  | `Ancestors -> Objs (Traversal.ancestors_of env.db ?classes ~filter oid)

let eval_class_predicate env pred forms =
  let schema = Database.schema env.db in
  match forms with
  | [ cls_form ] -> Bool (pred schema (symbol cls_form) ?attr:None ())
  | [ cls_form; attr_form ] ->
      Bool (pred schema (symbol cls_form) ?attr:(Some (symbol attr_form)) ())
  | _ -> fail "predicate expects a class and optionally an attribute"

(* Authorizations: sR, wR, s~W / s!W / s¬W … *)
let auth_of_string s =
  let open Auth in
  let strength, rest =
    if String.length s > 0 && s.[0] = 's' then (Strong, String.sub s 1 (String.length s - 1))
    else if String.length s > 0 && s.[0] = 'w' then (Weak, String.sub s 1 (String.length s - 1))
    else fail "bad authorization %s (expected s/w prefix)" s
  in
  let sign, rest =
    if rest = "" then fail "bad authorization %s" s
    else
      match rest.[0] with
      | '~' | '!' -> (Negative, String.sub rest 1 (String.length rest - 1))
      | '\xc2' when String.length rest >= 2 && rest.[1] = '\xac' ->
          (Negative, String.sub rest 2 (String.length rest - 2))
      | _ -> (Positive, rest)
  in
  let atype =
    match rest with
    | "R" | "r" -> Read
    | "W" | "w" -> Write
    | _ -> fail "bad authorization type %s" rest
  in
  { atype; sign; strength }

let target_of env form =
  match unquote form with
  | Sexp.List [ Sexp.Atom "object"; obj ] -> Authz.On_object (object_of env obj)
  | Sexp.List [ Sexp.Atom "class"; cls ] -> Authz.On_class (symbol cls)
  | other -> (
      (* bare object name or class name *)
      match other with
      | Sexp.Atom name -> (
          match lookup env name with
          | Some oid -> Authz.On_object oid
          | None -> Authz.On_class name)
      | _ -> fail "bad authorization target %s" (Sexp.to_string other))

(* Query expressions --------------------------------------------------------- *)

let path_of form =
  String.split_on_char '.' (symbol form) |> List.filter (fun s -> s <> "")

let rec expr_of env form =
  match unquote form with
  | Sexp.Atom "true" -> Expr.Const true
  | Sexp.Atom "nil" | Sexp.Atom "false" -> Expr.Const false
  | Sexp.List (Sexp.Atom op :: args) -> (
      let cmp c =
        match args with
        | [ path; v ] -> Expr.Cmp (c, path_of path, value_of env v)
        | _ -> fail "comparison expects a path and a value"
      in
      match op with
      | "=" -> (
          (* (= Path obj) on a bound object means Refers. *)
          match args with
          | [ path; Sexp.Atom name ] when lookup env name <> None ->
              Expr.Refers (path_of path, Option.get (lookup env name))
          | _ -> cmp Expr.Eq)
      | "/=" | "!=" -> cmp Expr.Neq
      | "<" -> cmp Expr.Lt
      | "<=" -> cmp Expr.Le
      | ">" -> cmp Expr.Gt
      | ">=" -> cmp Expr.Ge
      | "has" -> (
          match args with
          | [ path ] -> Expr.Has (path_of path)
          | _ -> fail "has expects a path")
      | "is-a" -> (
          match args with
          | [ path; cls ] -> Expr.In_class (path_of path, symbol cls)
          | [ cls ] -> Expr.In_class ([], symbol cls)
          | _ -> fail "is-a expects [path] class")
      | "part-of" -> (
          match args with
          | [ obj ] -> Expr.Component_of (object_of env obj)
          | _ -> fail "part-of expects an object")
      | "and" -> Expr.And (List.map (expr_of env) args)
      | "or" -> Expr.Or (List.map (expr_of env) args)
      | "not" -> (
          match args with
          | [ e ] -> Expr.Not (expr_of env e)
          | _ -> fail "not expects one expression")
      | "exists" -> (
          match args with
          | [ path; e ] -> Expr.Exists (path_of path, expr_of env e)
          | _ -> fail "exists expects a path and an expression")
      | "forall" -> (
          match args with
          | [ path; e ] -> Expr.Forall (path_of path, expr_of env e)
          | _ -> fail "forall expects a path and an expression")
      | other -> fail "unknown query operator %s" other)
  | other -> fail "bad query expression %s" (Sexp.to_string other)

let help_text =
  {|Commands:
  (make-class 'Name :superclasses (A B) :versionable true :segment "seg"
              :attributes ((Attr :domain D :composite true :exclusive nil :dependent true) ...))
  (make Class :parent ((obj Attr) ...) :Attr value ...)
  (setq name form)            bind the result object to a name
  (set-attr obj Attr value)   (get-attr obj Attr)
  (add-component parent Attr child)   (remove-component parent Attr child)
  (delete obj)
  (components-of obj [(Classes)] [Exclusive] [Shared] [Level])
  (parents-of obj ...)  (ancestors-of obj ...)  (children-of obj)
  (component-of o1 o2) (child-of o1 o2) (exclusive-component-of o1 o2) (shared-component-of o1 o2)
  (compositep Class [Attr]) (exclusive-compositep ...) (shared-compositep ...) (dependent-compositep ...)
  (derive-version v) (versions-of o) (generic-of v) (default-version o) (set-default-version o v)
  (bind-static holder Attr v) (bind-dynamic holder Attr v)
  (grant "user" sR target) (revoke "user" sR target) (check "user" R obj) (implied-on "user" obj)
      target = (object name) | (class Name); auth = s|w [~] R|W
  (change-attribute-type Class Attr :composite true :exclusive nil :dependent true :mode deferred)
  (drop-attribute Class Attr) (drop-superclass Class Super) (drop-class Class)
  (select Class expr) (count-select Class expr) (explain Class expr)
      expr = (= Path v) (< Path v) ... (has Path) (is-a [Path] Class) (part-of obj)
             (refers via (= Path obj)) (and ...) (or ...) (not e) (exists Path e) (forall Path e)
      Path = Attr or Attr.Attr...
  (create-index Class Attr) (drop-index Class Attr)
  (watch name obj) (changed name) (changes name) (clear-watch name)
  (describe obj) (instances-of Class) (integrity-check) (count-objects) (help)|}

let rec eval env form =
  match form with
  | Sexp.List (Sexp.Atom op :: rest) -> eval_op env op rest
  | Sexp.Atom name -> (
      match lookup env name with
      | Some oid -> Obj oid
      | None -> fail "unbound name %s" name)
  | Sexp.Int n -> Num n
  | Sexp.Str s -> Str s
  | other -> fail "cannot evaluate %s" (Sexp.to_string other)

and eval_op env op rest =
  match op with
  | "help" -> Str help_text
  | "progn" ->
      List.fold_left (fun _ form -> eval env form) Unit rest
  | "setq" -> (
      match rest with
      | [ Sexp.Atom name; form ] -> (
          match eval env form with
          | Obj oid ->
              bind env name oid;
              Obj oid
          | _ -> fail "setq expects an object-valued form")
      | _ -> fail "bad setq")
  | "make-class" -> eval_make_class env rest
  | "make" -> eval_make env rest
  | "set-attr" -> (
      match rest with
      | [ obj; attr; v ] ->
          obj_write_attr env (object_of env obj) (symbol attr)
            (value_of env v);
          Unit
      | _ -> fail "bad set-attr")
  | "get-attr" -> (
      match rest with
      | [ obj; attr ] -> (
          match Object_manager.read_attr env.db (object_of env obj) (symbol attr) with
          | Value.Ref oid -> Obj oid
          | Value.VSet vs ->
              Objs (List.concat_map (fun v -> Value.refs v) vs)
          | Value.Int n -> Num n
          | Value.Str s -> Str s
          | Value.Bool b -> Bool b
          | Value.Float f -> Str (string_of_float f)
          | Value.Null -> Unit)
      | _ -> fail "bad get-attr")
  | "add-component" -> (
      match rest with
      | [ parent; attr; child ] ->
          obj_make_component env ~parent:(object_of env parent)
            ~attr:(symbol attr) ~child:(object_of env child);
          Unit
      | _ -> fail "bad add-component")
  | "remove-component" -> (
      match rest with
      | [ parent; attr; child ] ->
          obj_remove_component env ~parent:(object_of env parent)
            ~attr:(symbol attr) ~child:(object_of env child);
          Unit
      | _ -> fail "bad remove-component")
  | "delete" -> (
      match rest with
      | [ obj ] ->
          obj_delete env (object_of env obj);
          Unit
      | _ -> fail "bad delete")
  | "components-of" -> (
      match rest with
      | obj :: args -> eval_traversal env `Components obj args
      | [] -> fail "bad components-of")
  | "parents-of" -> (
      match rest with
      | obj :: args -> eval_traversal env `Parents obj args
      | [] -> fail "bad parents-of")
  | "ancestors-of" -> (
      match rest with
      | obj :: args -> eval_traversal env `Ancestors obj args
      | [] -> fail "bad ancestors-of")
  | "children-of" -> (
      match rest with
      | [ obj ] -> Objs (Traversal.children_of env.db (object_of env obj))
      | _ -> fail "bad children-of")
  | "component-of" | "child-of" | "exclusive-component-of" | "shared-component-of"
    -> (
      match rest with
      | [ o1; o2 ] ->
          let o1 = object_of env o1 and o2 = object_of env o2 in
          let result =
            match op with
            | "component-of" -> Traversal.component_of env.db o1 o2
            | "child-of" -> Traversal.child_of env.db o1 o2
            | "exclusive-component-of" -> Traversal.exclusive_component_of env.db o1 o2
            | _ -> Traversal.shared_component_of env.db o1 o2
          in
          Bool result
      | _ -> fail "bad %s" op)
  | "compositep" -> eval_class_predicate env Schema.compositep rest
  | "exclusive-compositep" -> eval_class_predicate env Schema.exclusive_compositep rest
  | "shared-compositep" -> eval_class_predicate env Schema.shared_compositep rest
  | "dependent-compositep" -> eval_class_predicate env Schema.dependent_compositep rest
  | "derive-version" -> (
      match rest with
      | [ v ] -> Obj (VM.derive env.db (object_of env v))
      | _ -> fail "bad derive-version")
  | "generic-of" -> (
      match rest with
      | [ v ] -> Obj (VM.generic_of env.db (object_of env v))
      | _ -> fail "bad generic-of")
  | "versions-of" -> (
      match rest with
      | [ o ] -> Objs (VM.versions env.db (object_of env o))
      | _ -> fail "bad versions-of")
  | "default-version" -> (
      match rest with
      | [ o ] -> Obj (VM.default_version env.db (object_of env o))
      | _ -> fail "bad default-version")
  | "set-default-version" -> (
      match rest with
      | [ o; v ] ->
          VM.set_default_version env.db (object_of env o)
            (Some (object_of env v));
          Unit
      | _ -> fail "bad set-default-version")
  | "bind-static" -> (
      match rest with
      | [ holder; attr; v ] ->
          VM.bind_statically env.db ~holder:(object_of env holder)
            ~attr:(symbol attr) ~version:(object_of env v);
          Unit
      | _ -> fail "bad bind-static")
  | "bind-dynamic" -> (
      match rest with
      | [ holder; attr; v ] ->
          VM.bind_dynamically env.db ~holder:(object_of env holder)
            ~attr:(symbol attr) (object_of env v);
          Unit
      | _ -> fail "bad bind-dynamic")
  | "grant" -> (
      match rest with
      | [ Sexp.Str user; auth_form; target ] -> (
          let auth = auth_of_string (symbol auth_form) in
          match
            Authz.grant env.authz ~subject:user ~auth ~target:(target_of env target)
          with
          | Ok () -> Unit
          | Error conflicting ->
              Str
                (Format.asprintf "rejected: conflicts with %d existing grant(s)"
                   (List.length conflicting)))
      | _ -> fail "bad grant")
  | "revoke" -> (
      match rest with
      | [ Sexp.Str user; auth_form; target ] ->
          Bool
            (Authz.revoke env.authz ~subject:user
               ~auth:(auth_of_string (symbol auth_form))
               ~target:(target_of env target))
      | _ -> fail "bad revoke")
  | "check" -> (
      match rest with
      | [ Sexp.Str user; op_form; obj ] ->
          let op =
            match symbol op_form with
            | "R" | "r" -> Auth.Read
            | "W" | "w" -> Auth.Write
            | other -> fail "bad access type %s" other
          in
          Bool (Authz.check env.authz ~subject:user ~op (object_of env obj))
      | _ -> fail "bad check")
  | "implied-on" -> (
      match rest with
      | [ Sexp.Str user; obj ] ->
          Str (Auth.display (Authz.implied_on env.authz ~subject:user (object_of env obj)))
      | _ -> fail "bad implied-on")
  | "change-attribute-type" -> (
      match rest with
      | cls :: attr :: kwforms -> (
          let _, kws = kwsplit kwforms in
          let to_ =
            if truthy (kw kws "composite") then
              let flag key =
                match kw kws key with None -> true | Some f -> Sexp.is_true f
              in
              A.Composite { exclusive = flag "exclusive"; dependent = flag "dependent" }
            else A.Weak
          in
          let mode =
            match kw kws "mode" with
            | Some (Sexp.Atom "deferred") -> Evolution.Deferred
            | Some (Sexp.Atom "immediate") | None -> Evolution.Immediate
            | Some other -> fail "bad :mode %s" (Sexp.to_string other)
          in
          match
            Evolution.change_attribute_type env.evolution ~mode ~cls:(symbol cls)
              ~attr:(symbol attr) ~to_ ()
          with
          | Ok prims ->
              Str
                (String.concat " "
                   (List.map
                      (Format.asprintf "%a" Orion_evolution.Change.pp_primitive)
                      prims))
          | Error rejection ->
              Str (Format.asprintf "rejected: %a" Evolution.pp_rejection rejection))
      | _ -> fail "bad change-attribute-type")
  | "drop-attribute" -> (
      match rest with
      | [ cls; attr ] ->
          Evolution.drop_attribute env.evolution ~cls:(symbol cls) ~attr:(symbol attr);
          Unit
      | _ -> fail "bad drop-attribute")
  | "drop-superclass" -> (
      match rest with
      | [ cls; super ] ->
          Evolution.drop_superclass env.evolution ~cls:(symbol cls)
            ~super:(symbol super);
          Unit
      | _ -> fail "bad drop-superclass")
  | "drop-class" -> (
      match rest with
      | [ cls ] ->
          Evolution.drop_class env.evolution (symbol cls);
          Unit
      | _ -> fail "bad drop-class")
  | "select" -> (
      match rest with
      | cls :: expr_forms ->
          let expr =
            match expr_forms with
            | [] -> Expr.Const true
            | [ form ] -> expr_of env form
            | forms -> Expr.And (List.map (expr_of env) forms)
          in
          Objs (Engine.select env.query ~cls:(symbol cls) expr)
      | [] -> fail "bad select")
  | "count-select" -> (
      match rest with
      | cls :: expr_forms ->
          let expr =
            match expr_forms with
            | [] -> Expr.Const true
            | [ form ] -> expr_of env form
            | forms -> Expr.And (List.map (expr_of env) forms)
          in
          Num (Engine.count env.query ~cls:(symbol cls) expr)
      | [] -> fail "bad count-select")
  | "explain" -> (
      match rest with
      | [ cls; form ] ->
          Str
            (Format.asprintf "%a" Engine.pp_plan
               (Engine.explain env.query ~cls:(symbol cls) (expr_of env form)))
      | _ -> fail "bad explain")
  | "create-index" -> (
      match rest with
      | [ cls; attr ] ->
          ignore
            (Engine.add_index env.query ~cls:(symbol cls) ~attr:(symbol attr)
              : Orion_query.Index.t);
          Unit
      | _ -> fail "bad create-index")
  | "drop-index" -> (
      match rest with
      | [ cls; attr ] ->
          Bool (Engine.drop_index env.query ~cls:(symbol cls) ~attr:(symbol attr))
      | _ -> fail "bad drop-index")
  | "watch" -> (
      match rest with
      | [ Sexp.Atom name; obj ] ->
          let w = Notifier.watch env.notify (object_of env obj) in
          Hashtbl.replace env.watches name w;
          Unit
      | _ -> fail "bad watch: (watch name obj)")
  | "changed" -> (
      match rest with
      | [ Sexp.Atom name ] -> (
          match Hashtbl.find_opt env.watches name with
          | Some w -> Bool (Notifier.changed env.notify w)
          | None -> fail "unknown watch %s" name)
      | _ -> fail "bad changed")
  | "changes" -> (
      match rest with
      | [ Sexp.Atom name ] -> (
          match Hashtbl.find_opt env.watches name with
          | Some w ->
              Str
                (String.concat "; "
                   (List.map
                      (fun { Notifier.member; attr } ->
                        Format.asprintf "%a%s" Oid.pp member
                          (match attr with Some a -> "." ^ a | None -> " (deleted)"))
                      (Notifier.changes env.notify w)))
          | None -> fail "unknown watch %s" name)
      | _ -> fail "bad changes")
  | "clear-watch" -> (
      match rest with
      | [ Sexp.Atom name ] -> (
          match Hashtbl.find_opt env.watches name with
          | Some w ->
              Notifier.clear env.notify w;
              Unit
          | None -> fail "unknown watch %s" name)
      | _ -> fail "bad clear-watch")
  | "describe" -> (
      match rest with
      | [ obj ] ->
          let oid = object_of env obj in
          Str (Format.asprintf "%a" Instance.pp (Database.get env.db oid))
      | _ -> fail "bad describe")
  | "instances-of" -> (
      match rest with
      | [ cls ] -> Objs (Database.instances_of env.db (symbol cls))
      | _ -> fail "bad instances-of")
  | "count-objects" -> Num (Database.count env.db)
  | "integrity-check" -> (
      match Integrity.check env.db with
      | [] -> Str "consistent"
      | violations ->
          Str
            (Format.asprintf "@[<v>%a@]"
               (Format.pp_print_list Integrity.pp_violation)
               violations))
  | other -> fail "unknown command %s (try (help))" other

let eval_string env src = eval env (Sexp.parse src)

let eval_program env src = List.map (eval env) (Sexp.parse_many src)
