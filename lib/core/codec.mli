(** Object (de)serialization for the record store.

    The encoding is self-contained per object: OID, class name, kind
    (with version/generic bookkeeping), change count, attribute values,
    and — when the database keeps reverse references inline (§2.4) —
    the reverse reference list, which is what makes the paper's
    "object size increases" trade-off measurable (ablation A1). *)

val write_value : Orion_storage.Bytes_rw.Writer.t -> Value.t -> unit
(** The tagged value encoding, exposed for other framed formats (the
    write-ahead log, the network wire protocol). *)

val read_value : Orion_storage.Bytes_rw.Reader.t -> Value.t
(** @raise Orion_storage.Bytes_rw.Reader.Corrupt on malformed input. *)

val encode : Database.t -> Instance.t -> bytes

val decode : bytes -> Instance.t
(** The [rid] and [cluster_with] fields are not part of the image; the
    decoded instance has them unset.
    @raise Orion_storage.Bytes_rw.Reader.Corrupt on malformed input. *)

val encoded_size : Database.t -> Instance.t -> int
