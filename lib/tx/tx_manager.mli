(** Transactions over the composite-object store.

    Strict two-phase locking against {!Orion_locking.Lock_table} using
    the §7 protocols, with snapshot-based undo: each update operation
    captures the objects it may touch before mutating, and abort
    restores them.  This is a single-process simulation — [`Blocked]
    results park the transaction rather than suspend a thread; the
    {!Scheduler} drives interleavings for the concurrency benchmarks. *)

open Orion_core

type t

type tx

type state = Active | Blocked | Committing | Committed | Aborted
(** [Committing]: the commit has been submitted to the group-commit
    batcher ({!submit_commit}) and awaits the batch sync.  Locks stay
    held — strict 2PL across the durability point — and the transaction
    can no longer be aborted; {!complete_commit}/{!commit_failed} settle
    it when the committer reports. *)

val create :
  ?compat:(Orion_locking.Lock_mode.t -> Orion_locking.Lock_mode.t -> bool) ->
  ?escalation_threshold:int ->
  ?wal:Orion_wal.Wal.t ->
  ?lock_partitions:int ->
  Database.t ->
  t
(** [?escalation_threshold]: when a transaction accumulates that many
    instance locks on one class, the manager opportunistically upgrades
    to a whole-class S/X lock ({!Orion_locking.Lock_table.try_acquire});
    further instance locks on the class are then free.  Default: no
    escalation.

    [?wal]: a write-ahead log ({!Orion_wal.Wal.attach}ed to the same
    database).  Each {!commit} then appends the transaction's
    after-images and a commit record before releasing locks, making the
    commit durable for {!Orion_wal.Recovery.replay}.  Default: no
    logging (in-memory transaction semantics).

    [?lock_partitions]: slice the lock space into that many
    {!Orion_locking.Lock_partitions} partitions, keyed by composite
    root — class granules by storage segment, instance granules by oid
    hash.  Default [1] (one table, the pre-partitioning behavior,
    byte-for-byte). *)

val database : t -> Database.t

val set_wal : t -> Orion_wal.Wal.t -> unit
(** Late-bind the write-ahead log of a manager created without one — a
    promoted replica starts logging commits the moment it starts
    accepting writes.  Call at a transaction-quiescent point. *)

val lock_table : t -> Orion_locking.Lock_table.t
(** Partition 0's table.  With one partition (the default) this is the
    whole lock space; its instruments are shared across partitions
    either way, so {!Orion_locking.Lock_table.stats} on it reads the
    global counters. *)

val lock_partitions : t -> Orion_locking.Lock_partitions.t

val active_count : t -> int
(** Open transactions in [Active] state — runnable, neither parked on a
    lock nor submitted to the group committer. *)

val version_store : t -> Orion_mvcc.Version_store.t
(** The MVCC version store every commit publishes into (directly, or —
    under group commit — via the committer's seal hook; a replica's
    applier feeds its manager's store itself).  Snapshot transactions
    read from it. *)

val begin_tx : t -> tx
val tx_id : tx -> int
val state : tx -> state

(** {1 Locking}

    Lock acquisition returns [`Blocked] when the request queues; the
    transaction is then parked until a release unblocks it. *)

val lock_composite :
  t -> tx -> root:Oid.t -> Orion_locking.Protocol.access -> [ `Granted | `Blocked ]

val lock_instance :
  t -> tx -> Oid.t -> Orion_locking.Protocol.access -> [ `Granted | `Blocked ]

val escalated : t -> tx -> string list
(** Classes on which the transaction's instance locks escalated to a
    class lock. *)

(** {1 Updates with undo} *)

val create_object :
  t ->
  tx ->
  cls:string ->
  ?parents:(Oid.t * string) list ->
  ?attrs:(string * Value.t) list ->
  unit ->
  Oid.t

val write_attr : t -> tx -> Oid.t -> string -> Value.t -> unit

val make_component : t -> tx -> parent:Oid.t -> attr:string -> child:Oid.t -> unit

val remove_component : t -> tx -> parent:Oid.t -> attr:string -> child:Oid.t -> unit

val delete_object : t -> tx -> Oid.t -> unit

(** {1 Completion} *)

val commit : t -> tx -> int list
(** Release locks; returns transactions unblocked by the release.
    @raise Invalid_argument on a [Blocked] transaction (its lock
    request is still queued — commit would break two-phase locking) or
    an already-finished one. *)

val submit_commit : t -> tx -> Orion_wal.Wal_record.t list * (int * int * int)
(** Group-commit first half: capture the transaction's after-image
    records and the database counters [(next_oid, clock, cc)] it would
    seal with, and move it to [Committing].  The caller hands the
    records to {!Orion_wal.Group_commit.submit} and must finish the
    transaction with {!complete_commit} or {!commit_failed} once the
    committer reports.  Raises as {!commit} on a non-[Active]
    transaction. *)

val complete_commit : t -> tx -> int list
(** The batch sync succeeded: release locks, finish [Committed].
    Returns unblocked transactions, like {!commit}. *)

val commit_failed : t -> tx -> int list
(** The batch never became durable (the log crashed before the seal):
    undo the workspace and finish [Aborted].  Returns unblocked
    transactions. *)

val abort : t -> tx -> int list
(** Undo every update of the transaction (newest first), release locks
    — including any still-queued lock request of a [Blocked]
    transaction, which is dequeued without ever being granted; returns
    unblocked transactions.  Aborting an already-finished transaction
    is a no-op (the undo must not clobber state committed since). *)

val abort_id : t -> int -> int list
(** {!abort} by transaction id, for supervisors that hold ids rather
    than handles (the network server's deadlock breaker, which must be
    able to finish a victim whose owning session is already gone).
    Unknown or already-finished ids return [[]]. *)

val find_deadlock : t -> int list option
(** Incremental over the partitioned lock space: partitions with no new
    wait-for edge since their last clean search are skipped, and the
    merged cross-partition search runs only when waiters sit in two or
    more partitions. *)

val deadlock_check_due : t -> bool
(** Whether any partition has grown a wait-for edge since its last
    clean search — i.e. whether {!find_deadlock} could possibly find
    anything.  Lock-free; reads the partition generations. *)

(** {1 Snapshot transactions}

    Read-only transactions that skip the lock table entirely: reads
    resolve against the MVCC version store at the begin clock (the
    sealed clock of the last published commit), so concurrent writers
    neither block them nor are blocked by them, and a group-commit
    batch is visible all-or-none.  They take no undo snapshot and
    cannot write. *)

type snapshot_tx

val begin_snapshot : t -> snapshot_tx
(** Open a snapshot at the current sealed clock.  Pins version-store
    chains against GC until {!end_snapshot}. *)

val end_snapshot : t -> snapshot_tx -> unit
(** Close the snapshot and let the version store prune.  Idempotent. *)

val snapshot_id : snapshot_tx -> int
val snapshot_clock : snapshot_tx -> int

val snapshot_view : snapshot_tx -> Orion_mvcc.Snapshot_read.t
(** The read view: attribute fetch and [components-of]/[ancestors-of]
    traversals at the snapshot's clock. *)
